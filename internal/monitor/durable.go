package monitor

import (
	"fmt"
	"io"
	"sync"
	"time"

	"rtic/internal/storage"
	"rtic/internal/wal"
)

// Durable is the durability manager around a monitor: it journals every
// accepted transaction to a write-ahead log, periodically rotates an
// atomic checkpoint that truncates the journal, and replays the journal
// tail over the newest checkpoint on startup. Only the incremental
// engine is durable (it is the only one with snapshot support).
//
// Crash-safety argument: a commit is journaled under the commit lock
// before the next commit can start, so the log always holds every
// accepted transaction since the last checkpoint. A checkpoint writes
// the snapshot to a temp file, fsyncs, renames it over the live path,
// and only then resets the log — a crash before the rename leaves the
// old checkpoint plus a log that covers everything after it; a crash
// after the rename but before the reset leaves records the recovery
// skips by timestamp (timestamps are strictly increasing, so "t at or
// before the checkpoint's clock" identifies them exactly).
type Durable struct {
	m        *Monitor
	log      *wal.Log // nil: checkpoint-only durability
	snapPath string   // "": journal-only durability

	mu       sync.Mutex
	last     time.Time // last successful checkpoint
	lastErr  error     // latest durability failure, nil when healthy
	replayed int

	stop chan struct{}
	done chan struct{}
}

// NewDurable builds the durability manager. log may be nil (periodic
// checkpoints without a journal) and snapPath may be empty (journal
// only, replayed in full on recovery); at least one must be set.
func NewDurable(m *Monitor, log *wal.Log, snapPath string) (*Durable, error) {
	if m.inc == nil {
		return nil, fmt.Errorf("monitor: durability requires the incremental engine (current: %v)", m.mode)
	}
	if log == nil && snapPath == "" {
		return nil, fmt.Errorf("monitor: durability needs a WAL, a checkpoint path, or both")
	}
	return &Durable{m: m, log: log, snapPath: snapPath}, nil
}

// Recover replays the journal tail into the monitor and returns how
// many records were applied. Call it on the freshly built (or
// checkpoint-restored) monitor, before Attach and before serving
// traffic. Records already covered by the checkpoint — possible when a
// crash hit between checkpoint rename and journal reset — are skipped
// by timestamp.
func (d *Durable) Recover() (int, error) {
	if d.log == nil {
		return 0, nil
	}
	applied := 0
	_, err := d.log.Replay(func(payload []byte) error {
		t, tx, err := wal.DecodeTx(payload)
		if err != nil {
			return err
		}
		if d.m.Len() > 0 && t <= d.m.Now() {
			return nil // already in the checkpoint
		}
		if _, err := d.m.Apply(t, tx); err != nil {
			return fmt.Errorf("monitor: replaying record at t=%d: %w", t, err)
		}
		applied++
		return nil
	})
	d.mu.Lock()
	d.replayed = applied
	d.mu.Unlock()
	if mm, _ := d.m.Observer().Parts(); mm != nil {
		mm.ReplayedRecords.Add(uint64(applied))
	}
	return applied, err
}

// Attach starts journaling: every subsequently accepted transaction is
// appended to the log under the commit lock. Append failures mark the
// manager degraded (see Health) — the in-memory commit has already
// happened and keeps serving.
func (d *Durable) Attach() {
	if d.log == nil {
		return
	}
	d.m.SetJournal(func(t uint64, tx *storage.Transaction) {
		if err := d.log.AppendTx(t, tx); err != nil {
			d.noteError(err)
		}
	})
}

// Start runs the background checkpointer at the given interval until
// Stop. It requires a checkpoint path.
func (d *Durable) Start(interval time.Duration) {
	if d.snapPath == "" || interval <= 0 {
		return
	}
	d.stop = make(chan struct{})
	d.done = make(chan struct{})
	go func() {
		defer close(d.done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-d.stop:
				return
			case <-t.C:
				d.Checkpoint() //nolint:errcheck — recorded in Health and metrics
			}
		}
	}()
}

// Stop halts the background checkpointer (without a final checkpoint;
// call Checkpoint explicitly for a clean shutdown).
func (d *Durable) Stop() {
	if d.stop != nil {
		close(d.stop)
		<-d.done
		d.stop = nil
	}
}

// Checkpoint atomically rotates a snapshot into the checkpoint path and
// resets the journal. Commits are held out for the duration — bounded
// history encoding keeps the state (and so the pause) small.
func (d *Durable) Checkpoint() error {
	if d.snapPath == "" {
		return fmt.Errorf("monitor: no checkpoint path configured")
	}
	mm, _ := d.m.Observer().Parts()
	start := time.Now()
	err := d.checkpointLocked()
	if mm != nil {
		mm.CheckpointSeconds.Observe(time.Since(start).Seconds())
		if err != nil {
			mm.CheckpointErrors.Inc()
		} else {
			mm.Checkpoints.Inc()
			mm.CheckpointLastUnix.Set(time.Now().Unix())
		}
	}
	d.mu.Lock()
	if err != nil {
		d.lastErr = err
	} else {
		d.last = time.Now()
		d.lastErr = nil
	}
	d.mu.Unlock()
	return err
}

func (d *Durable) checkpointLocked() error {
	d.m.mu.Lock()
	defer d.m.mu.Unlock()
	if err := wal.WriteFileAtomic(d.snapPath, func(w io.Writer) error {
		return d.m.inc.SaveSnapshot(w)
	}); err != nil {
		return err
	}
	if d.log != nil {
		return d.log.Reset()
	}
	return nil
}

func (d *Durable) noteError(err error) {
	d.mu.Lock()
	d.lastErr = err
	d.mu.Unlock()
}

// DurabilityHealth is the durability section of a health report.
type DurabilityHealth struct {
	// Status is "ok", or "degraded" when the latest journal append or
	// checkpoint failed.
	Status string `json:"status"`
	// LastCheckpointAgeSeconds is the age of the newest successful
	// checkpoint, -1 when none has been written this run.
	LastCheckpointAgeSeconds float64 `json:"last_checkpoint_age_seconds"`
	// WALBytes is the journal's current on-disk size.
	WALBytes int64 `json:"wal_bytes"`
	// ReplayedRecords counts journal records applied during recovery.
	ReplayedRecords int `json:"replayed_records"`
	// LastError describes the failure behind a degraded status.
	LastError string `json:"last_error,omitempty"`
}

// Health reports the durability state for /healthz.
func (d *Durable) Health() DurabilityHealth {
	d.mu.Lock()
	defer d.mu.Unlock()
	h := DurabilityHealth{Status: "ok", LastCheckpointAgeSeconds: -1, ReplayedRecords: d.replayed}
	if !d.last.IsZero() {
		h.LastCheckpointAgeSeconds = time.Since(d.last).Seconds()
	}
	if d.log != nil {
		h.WALBytes = d.log.Size()
	}
	if d.lastErr != nil {
		h.Status = "degraded"
		h.LastError = d.lastErr.Error()
	}
	return h
}
