// Package monitor wraps a checking engine for long-running use:
// serialized concurrent commits, violation fan-out to subscribers,
// snapshot/restore, and a line-protocol network server so external
// producers can stream transactions to one shared checker. The engine
// defaults to the paper's incremental checker; WithMode selects the
// baselines for comparison deployments.
package monitor

import (
	"fmt"
	"io"
	"sync"
	"time"

	"rtic/internal/active"
	"rtic/internal/check"
	"rtic/internal/core"
	"rtic/internal/engine"
	"rtic/internal/lint"
	"rtic/internal/naive"
	"rtic/internal/obs"
	"rtic/internal/schema"
	"rtic/internal/shard"
	"rtic/internal/storage"
	"rtic/internal/workload"
)

// Monitor is a thread-safe integrity monitor around one checking
// engine. Commits are serialized; subscribers receive every violation.
type Monitor struct {
	mu     sync.Mutex
	eng    engine.Engine
	inc    *core.Checker // non-nil in unsharded Incremental mode: snapshots, stats
	rtr    *shard.Router // non-nil when sharded
	mode   engine.Mode
	states int
	now    uint64
	schema *schema.Schema
	obs    *obs.Observer

	// journal, when set, receives every accepted transaction under the
	// commit lock — the write-ahead hook of the durability layer.
	journal func(t uint64, tx *storage.Transaction)

	// diags holds the linter findings recorded while the constraints
	// were installed (New only; restored monitors carry none — their
	// constraints were vetted when first installed).
	diags []lint.Diagnostic

	subMu   sync.Mutex
	nextSub int
	subs    map[int]chan check.Violation
	dropped int

	recent     []check.Violation // ring buffer of the latest violations
	recentNext int
	recentFull bool
}

// recentCapacity bounds the violation ring buffer.
const recentCapacity = 128

// Option configures a monitor at construction time.
type Option func(*options)

type options struct {
	mode   engine.Mode
	par    int
	shards int
}

// WithMode selects the checking engine (default Incremental). Snapshot
// and Stats are only available in Incremental mode.
func WithMode(m engine.Mode) Option {
	return func(o *options) { o.mode = m }
}

// WithParallelism sets the worker-pool width of the incremental
// engine's commit pipeline (n<=0 selects GOMAXPROCS, the default); the
// other engines check sequentially and ignore it.
func WithParallelism(n int) Option {
	return func(o *options) { o.par = n }
}

// WithShards partitions the engine's state across n shard engines
// behind a router (see internal/shard): transactions split by the
// inferred per-relation partition columns, per-shard commits run
// concurrently, results stay exact. n<=1 selects the plain unsharded
// engine. Sharded monitors journal through per-shard WALs (see
// ShardedDurable) and do not support snapshots.
func WithShards(n int) Option {
	return func(o *options) { o.shards = n }
}

// New builds a monitor over the schema with the given constraints.
func New(s *schema.Schema, constraints []workload.ConstraintSpec, opts ...Option) (*Monitor, error) {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	m := &Monitor{mode: o.mode, schema: s, subs: make(map[int]chan check.Violation)}
	switch {
	case o.shards > 1:
		rtr, err := shard.NewMode(s, o.shards, o.mode, o.par)
		if err != nil {
			return nil, fmt.Errorf("monitor: %w", err)
		}
		m.rtr = rtr
		m.eng = rtr
	case o.mode == engine.Incremental:
		m.inc = core.New(s, core.WithParallelism(o.par))
		m.eng = m.inc
	case o.mode == engine.Naive:
		m.eng = naive.New(s)
	case o.mode == engine.ActiveRules:
		m.eng = active.New(s)
	default:
		return nil, fmt.Errorf("monitor: unknown mode %v", o.mode)
	}
	for _, cs := range constraints {
		con, err := check.Parse(cs.Name, cs.Source, s)
		if err != nil {
			return nil, err
		}
		if err := m.eng.AddConstraint(con); err != nil {
			return nil, err
		}
	}
	// Lint the spec the monitor now enforces. Findings never block
	// construction (the constraints above parsed and compiled), but they
	// are kept for the lint protocol command, the daemon's startup log
	// and the lint metrics.
	m.diags = lint.Constraints(constraints, s, lint.Options{})
	return m, nil
}

// Diagnostics returns the linter findings recorded when the monitor's
// constraints were installed (nil for restored monitors). The slice is
// a copy; callers may reorder it. diags is immutable after New, so
// this never takes the commit lock — a slow lint reader cannot stall
// commits.
func (m *Monitor) Diagnostics() []lint.Diagnostic {
	return append([]lint.Diagnostic(nil), m.diags...)
}

// Restore rebuilds a monitor from a checker snapshot (see
// core.SaveSnapshot); the snapshot carries its constraints. Restored
// monitors always run the incremental engine (it is the only one with
// snapshot support), so WithMode is rejected here.
func Restore(s *schema.Schema, r io.Reader, opts ...Option) (*Monitor, error) {
	return RestoreObserved(s, r, nil, opts...)
}

// RestoreObserved is Restore with the observer attached before the
// checker starts answering, so the restore itself is traced and the
// restored monitor is instrumented from its first commit.
func RestoreObserved(s *schema.Schema, r io.Reader, o *obs.Observer, opts ...Option) (*Monitor, error) {
	var op options
	for _, opt := range opts {
		opt(&op)
	}
	if op.mode != engine.Incremental {
		return nil, fmt.Errorf("monitor: snapshots restore the incremental engine; mode %v is not restorable", op.mode)
	}
	c, err := core.LoadSnapshotObserved(s, r, o, core.WithParallelism(op.par))
	if err != nil {
		return nil, err
	}
	return &Monitor{
		eng: c, inc: c, mode: engine.Incremental,
		states: c.Len(), now: c.Now(),
		schema: s, obs: o, subs: make(map[int]chan check.Violation),
	}, nil
}

// SetObserver attaches instrumentation to the monitor and its engine:
// the engine records commit/constraint metrics and trace events, the
// monitor counts subscriber drops, and the server (if any) counts
// connections and protocol errors. Attach before serving traffic.
func (m *Monitor) SetObserver(o *obs.Observer) {
	m.mu.Lock()
	m.obs = o
	m.eng.SetObserver(o)
	m.mu.Unlock()
}

// SetJournal attaches a hook invoked under the commit lock for every
// transaction the engine accepts, after the state has advanced. The
// hook must not call back into the monitor; journaling failures are the
// hook's to record (the commit has already happened and cannot be
// rolled back). A nil hook detaches the journal.
func (m *Monitor) SetJournal(j func(t uint64, tx *storage.Transaction)) {
	m.mu.Lock()
	m.journal = j
	m.mu.Unlock()
}

// Mode reports the engine the monitor runs.
func (m *Monitor) Mode() engine.Mode { return m.mode }

// Shards reports the shard count of the routing layer (1 = unsharded).
func (m *Monitor) Shards() int {
	if m.rtr != nil {
		return m.rtr.Shards()
	}
	return 1
}

// Router exposes the shard router (nil when unsharded); the sharded
// durability layer uses it to split journal records by shard.
func (m *Monitor) Router() *shard.Router { return m.rtr }

// Observer returns the attached observer (nil when uninstrumented).
func (m *Monitor) Observer() *obs.Observer {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.obs
}

// Apply commits a transaction at time t and returns its violations.
// Calls are serialized; timestamps must be strictly increasing across
// all callers. With an observer attached, the wait for the commit lock
// is recorded (rtic_commit_lock_wait_seconds) and a monitor.apply span
// — enclosing the engine's commit span and the journal hook, carrying
// the lock wait — goes to the span sink.
func (m *Monitor) Apply(t uint64, tx *storage.Transaction) ([]check.Violation, error) {
	obsv := m.Observer()
	mm, _ := obsv.Parts()
	sink := obsv.SpanSink()
	var sp *obs.Span
	var lockStart time.Time
	if mm != nil || sink != nil {
		lockStart = time.Now()
	}
	m.mu.Lock()
	if mm != nil || sink != nil {
		wait := time.Since(lockStart)
		if mm != nil {
			mm.LockWaitSeconds.Observe(wait.Seconds())
		}
		if sink != nil {
			sp = &obs.Span{Name: obs.SpanMonitorApply, Time: t, Start: lockStart, Wait: wait}
		}
	}
	vs, err := m.eng.Step(t, tx)
	if err == nil {
		m.states++
		m.now = t
		if m.journal != nil {
			m.journal(t, tx)
		}
	}
	m.mu.Unlock()
	if sp != nil {
		sp.Dur = time.Since(sp.Start)
		sp.Err = err
		sink.ObserveSpan(sp)
	}
	if err != nil {
		return nil, err
	}
	if len(vs) > 0 {
		m.publish(vs)
	}
	return vs, nil
}

func (m *Monitor) publish(vs []check.Violation) {
	mm, _ := m.Observer().Parts()
	m.subMu.Lock()
	defer m.subMu.Unlock()
	for _, v := range vs {
		if len(m.recent) < recentCapacity {
			m.recent = append(m.recent, v)
		} else {
			m.recent[m.recentNext] = v
			m.recentNext = (m.recentNext + 1) % recentCapacity
			m.recentFull = true
		}
	}
	for _, ch := range m.subs {
		for _, v := range vs {
			select {
			case ch <- v:
			default:
				m.dropped++ // slow subscriber: drop rather than stall commits
				if mm != nil {
					mm.DroppedViolations.Inc()
				}
			}
		}
	}
}

// Recent returns up to n of the most recent violations, oldest first
// (the monitor retains the last 128).
func (m *Monitor) Recent(n int) []check.Violation {
	m.subMu.Lock()
	defer m.subMu.Unlock()
	var ordered []check.Violation
	if m.recentFull {
		ordered = append(ordered, m.recent[m.recentNext:]...)
		ordered = append(ordered, m.recent[:m.recentNext]...)
	} else {
		ordered = append(ordered, m.recent...)
	}
	if n > 0 && len(ordered) > n {
		ordered = ordered[len(ordered)-n:]
	}
	return ordered
}

// Subscribe returns a channel receiving every future violation and a
// cancel function. A subscriber that falls behind its buffer loses
// violations (counted in Dropped) instead of blocking commits.
func (m *Monitor) Subscribe(buffer int) (<-chan check.Violation, func()) {
	if buffer < 1 {
		buffer = 1
	}
	ch := make(chan check.Violation, buffer)
	m.subMu.Lock()
	id := m.nextSub
	m.nextSub++
	m.subs[id] = ch
	m.subMu.Unlock()
	cancel := func() {
		m.subMu.Lock()
		if _, ok := m.subs[id]; ok {
			delete(m.subs, id)
			close(ch)
		}
		m.subMu.Unlock()
	}
	return ch, cancel
}

// Dropped reports how many violations were discarded because
// subscribers lagged.
func (m *Monitor) Dropped() int {
	m.subMu.Lock()
	defer m.subMu.Unlock()
	return m.dropped
}

// Snapshot checkpoints the checker state. Only the incremental engine
// supports snapshots.
func (m *Monitor) Snapshot(w io.Writer) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.rtr != nil {
		return fmt.Errorf("monitor: snapshots are not available on a sharded monitor; durability is per-shard WAL journals")
	}
	if m.inc == nil {
		return fmt.Errorf("monitor: snapshots are only available in incremental mode (current: %v)", m.mode)
	}
	return m.inc.SaveSnapshot(w)
}

// Stats reports the incremental engine's auxiliary storage; it returns
// zeros for the other engines.
func (m *Monitor) Stats() core.Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	switch {
	case m.inc != nil:
		return m.inc.Stats()
	case m.rtr != nil:
		return m.rtr.Stats()
	default:
		return core.Stats{}
	}
}

// Len reports the number of committed transactions.
func (m *Monitor) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.states
}

// Now returns the latest committed timestamp.
func (m *Monitor) Now() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.now
}

// String describes the monitor for logs.
func (m *Monitor) String() string {
	return fmt.Sprintf("monitor(%s, %d states)", m.schema.String(), m.Len())
}
