package monitor

import (
	"bytes"
	"net"
	"strconv"
	"strings"
	"testing"

	"rtic/internal/lint"
	"rtic/internal/schema"
	"rtic/internal/workload"
)

// suspectMonitor builds a monitor over a spec whose constraint installs
// fine but carries an Error-severity lint finding (prev[0,0] can never
// hold under strictly increasing timestamps).
func suspectMonitor(t *testing.T) *Monitor {
	t.Helper()
	s := schema.NewBuilder().Relation("p", 1).MustBuild()
	m, err := New(s, []workload.ConstraintSpec{
		{Name: "dead_window", Source: "p(x) -> prev[0,0] p(x)", Line: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMonitorDiagnostics(t *testing.T) {
	m := suspectMonitor(t)
	ds := m.Diagnostics()
	found := false
	for _, d := range ds {
		if d.Rule == "interval-unsatisfiable" && d.Constraint == "dead_window" {
			found = true
			if d.Line != 3 {
				t.Errorf("diagnostic line = %d, want 3", d.Line)
			}
		}
	}
	if !found {
		t.Fatalf("interval-unsatisfiable not recorded: %v", ds)
	}
	if lint.MaxSeverity(ds) != lint.Error {
		t.Errorf("max severity = %v, want error", lint.MaxSeverity(ds))
	}

	// A clean spec records no findings.
	clean, _ := hrMonitor(t)
	if ds := clean.Diagnostics(); len(ds) != 0 {
		t.Errorf("clean monitor has findings: %v", ds)
	}
}

// TestRestoredMonitorDiagnostics: restore carries no spec, so no
// findings — the lint command degrades to "ok 0" rather than lying.
func TestRestoredMonitorDiagnostics(t *testing.T) {
	m := suspectMonitor(t)
	var buf bytes.Buffer
	if err := m.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	s := schema.NewBuilder().Relation("p", 1).MustBuild()
	r, err := Restore(s, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if ds := r.Diagnostics(); len(ds) != 0 {
		t.Errorf("restored monitor has findings: %v", ds)
	}
}

func TestServerLintCommand(t *testing.T) {
	m := suspectMonitor(t)
	srv := NewServer(m)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l) //nolint:errcheck — returns when the listener closes
	t.Cleanup(func() {
		l.Close()
		srv.Close()
	})

	c := dial(t, l.Addr())
	c.send(t, "lint")
	got := c.recv(t)
	if !strings.HasPrefix(got, "diag error interval-unsatisfiable dead_window ") {
		t.Fatalf("diag line = %q", got)
	}
	var n int
	for !strings.HasPrefix(got, "ok ") {
		n++
		got = c.recv(t)
	}
	if got != "ok "+strconv.Itoa(n) {
		t.Fatalf("count line = %q after %d diag lines", got, n)
	}
	// The connection stays usable — and the dead window does exactly
	// what the finding predicted: prev[0,0] never holds, so the commit
	// is flagged immediately.
	c.send(t, "@1 +p(7)")
	if got := c.recv(t); !strings.HasPrefix(got, "violation dead_window") {
		t.Fatalf("reply after lint = %q", got)
	}
	if got := c.recv(t); got != "ok 1" {
		t.Fatalf("reply after lint = %q", got)
	}
}

// TestServerLintCommandClean: a clean spec replies ok 0.
func TestServerLintCommandClean(t *testing.T) {
	_, addr := startServer(t)
	c := dial(t, addr)
	c.send(t, "lint")
	if got := c.recv(t); got != "ok 0" {
		t.Fatalf("reply = %q", got)
	}
}
