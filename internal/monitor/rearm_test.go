package monitor

import (
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"rtic/internal/obs"
	"rtic/internal/schema"
	"rtic/internal/storage"
	"rtic/internal/tuple"
	"rtic/internal/vfs"
	"rtic/internal/wal"
)

// waitHealthy polls the health function until the status clears or the
// deadline passes.
func waitHealthy(t *testing.T, health func() DurabilityHealth) DurabilityHealth {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		h := health()
		if h.Status == "ok" {
			return h
		}
		if time.Now().After(deadline) {
			t.Fatalf("durability never re-armed; health = %+v", h)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func insertAt(t *testing.T, m *Monitor, ts uint64, e int64) {
	t.Helper()
	if _, err := m.Apply(ts, storage.NewTransaction().Insert("hire", tuple.Ints(e))); err != nil {
		t.Fatalf("commit at t=%d: %v", ts, err)
	}
}

// TestDrainRearmAfterTransientFailure fires one transient ENOSPC at a
// journal append: the commit is still acknowledged, the manager
// degrades with the record in its backlog, and the re-arm loop drains
// it back into the (never broken) log. A post-crash replay must see
// every commit, including the one from the degraded window.
func TestDrainRearmAfterTransientFailure(t *testing.T) {
	dir := t.TempDir()
	walPath := filepath.Join(dir, "state.wal")
	snapPath := filepath.Join(dir, "state.snap")
	// Ops: open(1), header write(2)+sync(3), first append write(4)+
	// sync(5), second append write(6) — the injection point.
	ffs := vfs.NewFaultFS(vfs.OS, vfs.Injection{AtOp: 6, Op: vfs.OpWrite, Kind: vfs.ENOSPC})

	m1 := durableMonitor(t)
	log1, err := wal.Open(walPath, wal.WithFS(ffs))
	if err != nil {
		t.Fatal(err)
	}
	d1, err := NewDurable(m1, log1, snapPath, WithRearmBackoff(5*time.Millisecond, 50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	d1.Attach()

	insertAt(t, m1, 10, 1)
	insertAt(t, m1, 20, 2) // journal append fails, commit still acknowledged
	h := waitHealthy(t, d1.Health)
	if h.Rearms != 1 || h.BacklogRecords != 0 {
		t.Fatalf("health after drain re-arm = %+v, want 1 re-arm and an empty backlog", h)
	}
	insertAt(t, m1, 30, 3)
	if err := log1.Err(); err != nil {
		t.Fatalf("log latched broken after a transient failure: %v", err)
	}
	if got := log1.Records(); got != 3 {
		t.Fatalf("journal holds %d records after drain, want 3", got)
	}
	// Crash without closing; recover over the real filesystem.
	m2 := durableMonitor(t)
	log2, err := wal.Open(walPath)
	if err != nil {
		t.Fatal(err)
	}
	defer log2.Close()
	d2, err := NewDurable(m2, log2, snapPath)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := d2.Recover(); err != nil || n != 3 {
		t.Fatalf("Recover = %d, %v; want all 3 commits (degraded-window commit included)", n, err)
	}
	if m2.Now() != 30 {
		t.Fatalf("recovered Now = %d, want 30", m2.Now())
	}
}

// TestFreshSegmentRearmAfterBrokenLog latches the journal broken (fsync
// failure) and verifies the checkpoint-class re-arm: a fresh segment is
// rotated over the broken one behind an atomic checkpoint that covers
// the degraded window, and recovery from checkpoint + fresh journal
// reproduces the full state.
func TestFreshSegmentRearmAfterBrokenLog(t *testing.T) {
	dir := t.TempDir()
	walPath := filepath.Join(dir, "state.wal")
	snapPath := filepath.Join(dir, "state.snap")
	// Op 7 is the second append's fsync: the write lands, the sync fails,
	// the log latches broken.
	ffs := vfs.NewFaultFS(vfs.OS, vfs.Injection{AtOp: 7, Op: vfs.OpSync, Kind: vfs.SyncFailure})

	m1 := durableMonitor(t)
	log1, err := wal.Open(walPath, wal.WithFS(ffs))
	if err != nil {
		t.Fatal(err)
	}
	d1, err := NewDurable(m1, log1, snapPath, WithRearmBackoff(5*time.Millisecond, 50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	d1.Attach()

	insertAt(t, m1, 10, 1)
	insertAt(t, m1, 20, 2) // fsync fails: log breaks, manager degrades
	if err := log1.Err(); err == nil {
		t.Fatal("expected the original log to latch broken")
	}
	h := waitHealthy(t, d1.Health)
	if h.Rearms != 1 {
		t.Fatalf("health after fresh-segment re-arm = %+v, want 1 re-arm", h)
	}
	if h.LastCheckpointAgeSeconds < 0 {
		t.Fatalf("re-arm did not record its checkpoint: %+v", h)
	}
	insertAt(t, m1, 30, 3) // lands in the fresh segment
	if _, err := os.Stat(walPath + ".rearm"); !os.IsNotExist(err) {
		t.Fatalf("re-arm staging segment left behind: %v", err)
	}

	// Crash; recover from checkpoint + fresh journal over the real FS.
	s := schema.NewBuilder().Relation("hire", 1).Relation("fire", 1).MustBuild()
	sf, err := os.Open(snapPath)
	if err != nil {
		t.Fatalf("checkpoint missing after re-arm: %v", err)
	}
	m2, err := RestoreObserved(s, sf, &obs.Observer{Metrics: obs.NewMetrics(obs.NewRegistry())})
	sf.Close()
	if err != nil {
		t.Fatal(err)
	}
	if m2.Now() != 20 {
		t.Fatalf("checkpoint covers up to t=%d, want 20 (degraded window included)", m2.Now())
	}
	log2, err := wal.Open(walPath)
	if err != nil {
		t.Fatal(err)
	}
	defer log2.Close()
	d2, err := NewDurable(m2, log2, snapPath)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := d2.Recover(); err != nil || n != 1 {
		t.Fatalf("Recover = %d, %v; want 1 post-re-arm record", n, err)
	}
	if m2.Now() != 30 || m2.Len() != 3 {
		t.Fatalf("recovered to Len=%d Now=%d, want 3/30", m2.Len(), m2.Now())
	}
}

// TestBacklogOverflowForcesCheckpointRearm caps the backlog at one
// record and commits past it during a degraded window: the overflow
// rules out a drain, so the re-arm must go through the checkpoint
// class even though the log never latched broken.
func TestBacklogOverflowForcesCheckpointRearm(t *testing.T) {
	dir := t.TempDir()
	walPath := filepath.Join(dir, "state.wal")
	snapPath := filepath.Join(dir, "state.snap")
	ffs := vfs.NewFaultFS(vfs.OS, vfs.Injection{AtOp: 4, Op: vfs.OpWrite, Kind: vfs.ENOSPC})

	m1 := durableMonitor(t)
	log1, err := wal.Open(walPath, wal.WithFS(ffs))
	if err != nil {
		t.Fatal(err)
	}
	d1, err := NewDurable(m1, log1, snapPath,
		WithBacklogLimit(1),
		WithRearmBackoff(200*time.Millisecond, time.Second))
	if err != nil {
		t.Fatal(err)
	}
	d1.Attach()

	// All three commits land before the first re-arm attempt (the
	// backoff floor is 100ms of jittered delay): the first fails its
	// append and fills the one-record backlog, the next two overflow it.
	insertAt(t, m1, 10, 1)
	insertAt(t, m1, 20, 2)
	insertAt(t, m1, 30, 3)
	if h := d1.Health(); !h.BacklogOverflow || h.Status != "degraded" {
		t.Fatalf("health before re-arm = %+v, want a degraded overflowed backlog", h)
	}
	h := waitHealthy(t, d1.Health)
	if h.Rearms != 1 || h.BacklogOverflow {
		t.Fatalf("health after overflow re-arm = %+v", h)
	}

	// The checkpoint must cover every commit: replay the fresh journal
	// over it and compare.
	s := schema.NewBuilder().Relation("hire", 1).Relation("fire", 1).MustBuild()
	sf, err := os.Open(snapPath)
	if err != nil {
		t.Fatalf("checkpoint missing after overflow re-arm: %v", err)
	}
	m2, err := RestoreObserved(s, sf, &obs.Observer{Metrics: obs.NewMetrics(obs.NewRegistry())})
	sf.Close()
	if err != nil {
		t.Fatal(err)
	}
	if m2.Now() != 30 || m2.Len() != 3 {
		t.Fatalf("checkpoint covers Len=%d Now=%d, want 3/30", m2.Len(), m2.Now())
	}
}

// TestCheckpointSkippedWhileDegraded pins that the periodic checkpointer
// defers to the re-arm loop: while degraded, Checkpoint is a no-op that
// neither rotates a snapshot nor resets the journal the drain needs.
func TestCheckpointSkippedWhileDegraded(t *testing.T) {
	dir := t.TempDir()
	walPath := filepath.Join(dir, "state.wal")
	snapPath := filepath.Join(dir, "state.snap")
	ffs := vfs.NewFaultFS(vfs.OS, vfs.Injection{AtOp: 4, Op: vfs.OpWrite, Kind: vfs.ENOSPC})

	m1 := durableMonitor(t)
	log1, err := wal.Open(walPath, wal.WithFS(ffs))
	if err != nil {
		t.Fatal(err)
	}
	// An hour of backoff keeps the manager degraded for the whole test.
	d1, err := NewDurable(m1, log1, snapPath, WithRearmBackoff(time.Hour, time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	d1.Attach()
	insertAt(t, m1, 10, 1)
	if h := d1.Health(); h.Status != "degraded" || h.BacklogRecords != 1 || h.DegradedSeconds <= 0 {
		t.Fatalf("health = %+v, want degraded with 1 backlog record", h)
	}
	if err := d1.Checkpoint(); err != nil {
		t.Fatalf("degraded checkpoint should be a silent no-op, got %v", err)
	}
	if _, err := os.Stat(snapPath); !os.IsNotExist(err) {
		t.Fatalf("degraded checkpoint rotated a snapshot: %v", err)
	}
	if h := d1.Health(); h.Status != "degraded" || h.BacklogRecords != 1 {
		t.Fatalf("health changed across a skipped checkpoint: %+v", h)
	}
	d1.Stop() // must cleanly stop the still-sleeping re-arm loop
}

// TestHaltPolicyCallsHaltOnce wires the Halt policy and verifies the
// halt function fires exactly once across repeated failures while
// commits keep succeeding (the engine has already applied them).
func TestHaltPolicyCallsHaltOnce(t *testing.T) {
	dir := t.TempDir()
	walPath := filepath.Join(dir, "state.wal")
	// Op 5 is the first append's fsync: the log latches broken and every
	// later append fails too.
	ffs := vfs.NewFaultFS(vfs.OS, vfs.Injection{AtOp: 5, Op: vfs.OpSync, Kind: vfs.SyncFailure})

	m1 := durableMonitor(t)
	log1, err := wal.Open(walPath, wal.WithFS(ffs))
	if err != nil {
		t.Fatal(err)
	}
	var halts atomic.Int64
	d1, err := NewDurable(m1, log1, "",
		WithFailurePolicy(Halt),
		WithHaltFunc(func(error) { halts.Add(1) }))
	if err != nil {
		t.Fatal(err)
	}
	d1.Attach()

	insertAt(t, m1, 10, 1) // fsync fails: halt fires
	insertAt(t, m1, 20, 2) // append on the broken log fails again
	if got := halts.Load(); got != 1 {
		t.Fatalf("halt fired %d times, want exactly 1", got)
	}
	h := d1.Health()
	if h.Status != "degraded" || h.Policy != "halt" || h.Rearms != 0 {
		t.Fatalf("health under halt policy = %+v", h)
	}
	if m1.Len() != 2 {
		t.Fatalf("commits under halt policy: Len = %d, want 2", m1.Len())
	}
}

// TestShardedDrainRearm degrades a sharded manager with a transient
// failure on one shard's journal: the partially journaled commit is
// completed on exactly the missing shard, the journals realign, and a
// post-crash recovery sees every commit.
func TestShardedDrainRearm(t *testing.T) {
	const shards = 2
	dir := t.TempDir()
	// Shard 1's journal fails its second append transiently; shard 0's
	// journal is healthy throughout.
	ffs := vfs.NewFaultFS(vfs.OS, vfs.Injection{AtOp: 6, Op: vfs.OpWrite, Kind: vfs.ENOSPC})
	m1 := shardedMonitor(t, shards)
	logs1 := make([]*wal.Log, shards)
	for i := range logs1 {
		var opts []wal.Option
		if i == 1 {
			opts = append(opts, wal.WithFS(ffs))
		}
		l, err := wal.Open(filepath.Join(dir, fmt.Sprintf("state.wal.%d", i)), opts...)
		if err != nil {
			t.Fatal(err)
		}
		logs1[i] = l
	}
	d1, err := NewShardedDurable(m1, logs1, WithRearmBackoff(5*time.Millisecond, 50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	d1.Attach()

	insertAt(t, m1, 10, 1)
	insertAt(t, m1, 20, 2) // shard 1 misses this record until the drain
	h := waitHealthy(t, d1.Health)
	if h.Rearms != 1 || h.BacklogRecords != 0 {
		t.Fatalf("health after sharded drain = %+v", h)
	}
	insertAt(t, m1, 30, 3)
	for i, l := range logs1 {
		if got := l.Records(); got != 3 {
			t.Fatalf("shard %d journal holds %d records, want 3 (journals misaligned)", i, got)
		}
	}
	d1.Stop()
	// Crash without closing; recover over the real filesystem.
	m2 := shardedMonitor(t, shards)
	logs2 := openShardLogs(t, dir, shards)
	defer closeShardLogs(t, logs2)
	d2, err := NewShardedDurable(m2, logs2)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := d2.Recover(); err != nil || n != 3 {
		t.Fatalf("sharded Recover = %d, %v; want all 3 commits", n, err)
	}
	if m2.Now() != 30 {
		t.Fatalf("recovered Now = %d, want 30", m2.Now())
	}
}
