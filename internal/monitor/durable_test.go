package monitor

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"rtic/internal/check"
	"rtic/internal/engine"
	"rtic/internal/obs"
	"rtic/internal/schema"
	"rtic/internal/storage"
	"rtic/internal/tuple"
	"rtic/internal/wal"
	"rtic/internal/workload"
)

// hrTrace is a deterministic workload with violations scattered
// through it: firing then rehiring the same employee within the window
// trips no_quick_rehire.
func hrTrace(n int) []struct {
	t  uint64
	tx *storage.Transaction
} {
	var steps []struct {
		t  uint64
		tx *storage.Transaction
	}
	for i := 0; i < n; i++ {
		e := int64(i % 5)
		tx := storage.NewTransaction()
		if i%3 == 0 {
			tx.Insert("fire", tuple.Ints(e))
		} else {
			tx.Delete("fire", tuple.Ints(e)).Insert("hire", tuple.Ints(e))
		}
		steps = append(steps, struct {
			t  uint64
			tx *storage.Transaction
		}{uint64(i * 10), tx})
	}
	return steps
}

func durableMonitor(t *testing.T) *Monitor {
	t.Helper()
	s := schema.NewBuilder().Relation("hire", 1).Relation("fire", 1).MustBuild()
	m, err := New(s, []workload.ConstraintSpec{
		{Name: "no_quick_rehire", Source: "hire(e) -> not once[0,365] fire(e)"},
	})
	if err != nil {
		t.Fatal(err)
	}
	m.SetObserver(&obs.Observer{Metrics: obs.NewMetrics(obs.NewRegistry())})
	return m
}

// violationKeys flattens per-step violations into comparable strings.
// Within one step the parallel pipeline reports violations in
// nondeterministic order, so each step's batch is sorted.
func violationKeys(vss [][]check.Violation) []string {
	var out []string
	for i, vs := range vss {
		step := make([]string, 0, len(vs))
		for _, v := range vs {
			step = append(step, fmt.Sprintf("%d:%s", i, v.String()))
		}
		sort.Strings(step)
		out = append(out, step...)
	}
	return out
}

// TestKillAndRecoverMatchesUninterrupted drives half a trace into a
// durable monitor, checkpoints mid-way, keeps committing, "crashes"
// (abandons the monitor without any shutdown), recovers a fresh one
// from checkpoint + WAL replay, and finishes the trace. Violations
// from the recovered half and the final auxiliary state must be
// identical to one uninterrupted run.
func TestKillAndRecoverMatchesUninterrupted(t *testing.T) {
	trace := hrTrace(30)
	half := len(trace) / 2
	ckptAt := len(trace) / 3

	// Reference: uninterrupted run.
	ref := durableMonitor(t)
	var refVs [][]check.Violation
	for _, st := range trace {
		vs, err := ref.Apply(st.t, st.tx)
		if err != nil {
			t.Fatal(err)
		}
		refVs = append(refVs, vs)
	}

	// Durable run, killed after half the trace.
	dir := t.TempDir()
	walPath := filepath.Join(dir, "state.wal")
	snapPath := filepath.Join(dir, "state.snap")
	m1 := durableMonitor(t)
	log1, err := wal.Open(walPath)
	if err != nil {
		t.Fatal(err)
	}
	d1, err := NewDurable(m1, log1, snapPath)
	if err != nil {
		t.Fatal(err)
	}
	d1.Attach()
	var firstVs [][]check.Violation
	for _, st := range trace[:half] {
		vs, err := m1.Apply(st.t, st.tx)
		if err != nil {
			t.Fatal(err)
		}
		firstVs = append(firstVs, vs)
		if len(firstVs) == ckptAt {
			if err := d1.Checkpoint(); err != nil {
				t.Fatalf("mid-run checkpoint: %v", err)
			}
		}
	}
	if !reflect.DeepEqual(violationKeys(firstVs), violationKeys(refVs[:half])) {
		t.Fatal("pre-crash violations diverge from reference — test bug")
	}
	// Crash: no checkpoint, no WAL close, the monitor is simply gone.

	// Recover into a fresh monitor: newest checkpoint + WAL tail.
	s := schema.NewBuilder().Relation("hire", 1).Relation("fire", 1).MustBuild()
	sf, err := os.Open(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := RestoreObserved(s, sf, &obs.Observer{Metrics: obs.NewMetrics(obs.NewRegistry())})
	sf.Close()
	if err != nil {
		t.Fatal(err)
	}
	log2, err := wal.Open(walPath)
	if err != nil {
		t.Fatal(err)
	}
	defer log2.Close()
	d2, err := NewDurable(m2, log2, snapPath)
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := d2.Recover()
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	if want := half - ckptAt; replayed != want {
		t.Errorf("replayed %d records, want %d (WAL tail past the checkpoint)", replayed, want)
	}
	d2.Attach()

	if m2.Len() != half || m2.Now() != trace[half-1].t {
		t.Fatalf("recovered to Len=%d Now=%d, want %d/%d", m2.Len(), m2.Now(), half, trace[half-1].t)
	}

	// The recovered monitor must finish the trace exactly like the
	// uninterrupted one: same violations, same auxiliary state.
	var restVs [][]check.Violation
	for _, st := range trace[half:] {
		vs, err := m2.Apply(st.t, st.tx)
		if err != nil {
			t.Fatal(err)
		}
		restVs = append(restVs, vs)
	}
	if got, want := violationKeys(restVs), violationKeys(refVs[half:]); !reflect.DeepEqual(got, want) {
		t.Errorf("post-recovery violations = %v, want %v", got, want)
	}
	if got, want := m2.Stats(), ref.Stats(); !reflect.DeepEqual(got, want) {
		t.Errorf("post-recovery aux stats = %+v, want %+v", got, want)
	}
}

// TestRecoverWALOnly replays a journal into an empty monitor when no
// checkpoint was ever written.
func TestRecoverWALOnly(t *testing.T) {
	trace := hrTrace(12)
	dir := t.TempDir()
	walPath := filepath.Join(dir, "only.wal")

	m1 := durableMonitor(t)
	log1, err := wal.Open(walPath)
	if err != nil {
		t.Fatal(err)
	}
	d1, err := NewDurable(m1, log1, "")
	if err != nil {
		t.Fatal(err)
	}
	d1.Attach()
	for _, st := range trace {
		if _, err := m1.Apply(st.t, st.tx); err != nil {
			t.Fatal(err)
		}
	}
	// Crash without closing.

	m2 := durableMonitor(t)
	log2, err := wal.Open(walPath)
	if err != nil {
		t.Fatal(err)
	}
	defer log2.Close()
	d2, err := NewDurable(m2, log2, "")
	if err != nil {
		t.Fatal(err)
	}
	n, err := d2.Recover()
	if err != nil || n != len(trace) {
		t.Fatalf("Recover = %d, %v; want %d records", n, err, len(trace))
	}
	if m2.Len() != m1.Len() || m2.Now() != m1.Now() || !reflect.DeepEqual(m2.Stats(), m1.Stats()) {
		t.Errorf("WAL-only recovery diverged: Len %d/%d Now %d/%d", m2.Len(), m1.Len(), m2.Now(), m1.Now())
	}
}

// TestRecoverSkipsRecordsCoveredByCheckpoint simulates a crash between
// checkpoint rename and WAL reset: every journaled record is also in
// the checkpoint, and replay must skip all of them by timestamp.
func TestRecoverSkipsRecordsCoveredByCheckpoint(t *testing.T) {
	trace := hrTrace(8)
	dir := t.TempDir()
	walPath := filepath.Join(dir, "state.wal")
	snapPath := filepath.Join(dir, "state.snap")

	m1 := durableMonitor(t)
	log1, err := wal.Open(walPath)
	if err != nil {
		t.Fatal(err)
	}
	d1, err := NewDurable(m1, log1, snapPath)
	if err != nil {
		t.Fatal(err)
	}
	d1.Attach()
	for _, st := range trace {
		if _, err := m1.Apply(st.t, st.tx); err != nil {
			t.Fatal(err)
		}
	}
	// Checkpoint WITHOUT the WAL reset: write the snapshot atomically,
	// as if the process died right after the rename.
	if err := wal.WriteFileAtomic(snapPath, m1.Snapshot); err != nil {
		t.Fatal(err)
	}

	s := schema.NewBuilder().Relation("hire", 1).Relation("fire", 1).MustBuild()
	sf, err := os.Open(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Restore(s, sf)
	sf.Close()
	if err != nil {
		t.Fatal(err)
	}
	log2, err := wal.Open(walPath)
	if err != nil {
		t.Fatal(err)
	}
	defer log2.Close()
	d2, err := NewDurable(m2, log2, snapPath)
	if err != nil {
		t.Fatal(err)
	}
	n, err := d2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("replayed %d records that the checkpoint already covers", n)
	}
	if m2.Len() != m1.Len() || m2.Now() != m1.Now() {
		t.Errorf("double-apply detected: Len %d/%d Now %d/%d", m2.Len(), m1.Len(), m2.Now(), m1.Now())
	}
}

// TestCheckpointFailureReportsDegraded points the checkpoint at an
// unwritable path and expects Health to flip to degraded — and back to
// ok once checkpointing succeeds again.
func TestCheckpointFailureReportsDegraded(t *testing.T) {
	dir := t.TempDir()
	m := durableMonitor(t)
	log, err := wal.Open(filepath.Join(dir, "state.wal"))
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	bad := filepath.Join(dir, "no-such-dir", "state.snap")
	d, err := NewDurable(m, log, bad)
	if err != nil {
		t.Fatal(err)
	}
	d.Attach()
	if _, err := m.Apply(0, ins("fire", 1)); err != nil {
		t.Fatal(err)
	}
	if err := d.Checkpoint(); err == nil {
		t.Fatal("checkpoint into a missing directory succeeded")
	}
	h := d.Health()
	if h.Status != "degraded" || h.LastError == "" {
		t.Errorf("health after failed checkpoint = %+v, want degraded", h)
	}
	if h.LastCheckpointAgeSeconds != -1 {
		t.Errorf("LastCheckpointAgeSeconds = %v, want -1 (never)", h.LastCheckpointAgeSeconds)
	}
	mm, _ := m.Observer().Parts()
	if mm.CheckpointErrors.Value() != 1 {
		t.Errorf("CheckpointErrors = %d, want 1", mm.CheckpointErrors.Value())
	}

	// Recovery of the degraded state: fix the path, checkpoint again.
	d.snapPath = filepath.Join(dir, "state.snap")
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	h = d.Health()
	if h.Status != "ok" || h.LastCheckpointAgeSeconds < 0 {
		t.Errorf("health after recovery = %+v, want ok with a real age", h)
	}
	if log.Records() != 0 {
		t.Errorf("checkpoint did not reset the WAL: %d records", log.Records())
	}
}

// TestDurableRequiresIncremental rejects the baseline engines.
func TestDurableRequiresIncremental(t *testing.T) {
	s := schema.NewBuilder().Relation("p", 1).MustBuild()
	m, err := New(s, []workload.ConstraintSpec{{Name: "c", Source: "p(x) -> not once p(x)"}},
		WithMode(engine.Naive))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewDurable(m, nil, "x.snap"); err == nil {
		t.Error("durability accepted a non-incremental engine")
	}
	m2 := durableMonitor(t)
	if _, err := NewDurable(m2, nil, ""); err == nil {
		t.Error("durability accepted neither WAL nor checkpoint path")
	}
}
