package monitor

import (
	"bytes"
	"testing"

	"rtic/internal/engine"
	"rtic/internal/schema"
	"rtic/internal/workload"
)

func newWithMode(t *testing.T, mode engine.Mode) *Monitor {
	t.Helper()
	s := schema.NewBuilder().Relation("hire", 1).Relation("fire", 1).MustBuild()
	m, err := New(s, []workload.ConstraintSpec{
		{Name: "no_quick_rehire", Source: "hire(e) -> not once[0,365] fire(e)"},
	}, WithMode(mode))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMonitorModes(t *testing.T) {
	for _, mode := range []engine.Mode{engine.Incremental, engine.Naive, engine.ActiveRules} {
		t.Run(mode.String(), func(t *testing.T) {
			m := newWithMode(t, mode)
			if m.Mode() != mode {
				t.Fatalf("Mode() = %v", m.Mode())
			}
			if _, err := m.Apply(0, ins("fire", 7)); err != nil {
				t.Fatal(err)
			}
			vs, err := m.Apply(100, ins("hire", 7))
			if err != nil || len(vs) != 1 {
				t.Fatalf("vs=%v err=%v", vs, err)
			}
			if m.Len() != 2 || m.Now() != 100 {
				t.Fatalf("Len=%d Now=%d", m.Len(), m.Now())
			}
		})
	}
}

func TestNonIncrementalRefusesSnapshot(t *testing.T) {
	m := newWithMode(t, engine.Naive)
	var buf bytes.Buffer
	if err := m.Snapshot(&buf); err == nil {
		t.Fatal("naive monitor snapshotted")
	}
	if got := m.Stats(); got.Nodes != 0 || got.Bytes != 0 {
		t.Fatalf("naive monitor stats = %+v", got)
	}
}

func TestRestoreRejectsNonIncrementalMode(t *testing.T) {
	m := newWithMode(t, engine.Incremental)
	if _, err := m.Apply(1, ins("fire", 1)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	s := schema.NewBuilder().Relation("hire", 1).Relation("fire", 1).MustBuild()
	if _, err := Restore(s, bytes.NewReader(buf.Bytes()), WithMode(engine.Naive)); err == nil {
		t.Fatal("restore into naive mode accepted")
	}
	m2, err := Restore(s, bytes.NewReader(buf.Bytes()), WithParallelism(2))
	if err != nil {
		t.Fatal(err)
	}
	if m2.Len() != 1 || m2.Now() != 1 {
		t.Fatalf("restored Len=%d Now=%d", m2.Len(), m2.Now())
	}
}
