package monitor

import (
	"testing"

	"rtic/internal/obs"
	"rtic/internal/workload"

	rschema "rtic/internal/schema"
)

// TestApplySpansAndLockWait checks the monitor's commit section: each
// Apply emits a monitor.apply span carrying the serialization wait,
// the engine's own commit span reaches the same sink, and the
// lock-wait histogram advances alongside.
func TestApplySpansAndLockWait(t *testing.T) {
	s := rschema.NewBuilder().Relation("hire", 1).Relation("fire", 1).MustBuild()
	m, err := New(s, []workload.ConstraintSpec{
		{Name: "no_quick_rehire", Source: "hire(e) -> not once[0,365] fire(e)"},
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.NewSpanRecorder(16)
	metrics := obs.NewMetrics(obs.NewRegistry())
	m.SetObserver(&obs.Observer{Metrics: metrics, Spans: rec})

	if _, err := m.Apply(1, ins("fire", 7)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Apply(2, ins("hire", 7)); err != nil {
		t.Fatal(err)
	}

	roots := rec.Snapshot()
	var applies, commits int
	for _, sp := range roots {
		switch sp.Name {
		case obs.SpanMonitorApply:
			applies++
			if sp.Dur <= 0 {
				t.Errorf("apply span t=%d has no duration", sp.Time)
			}
			if sp.Wait < 0 || sp.Wait > sp.Dur {
				t.Errorf("apply span t=%d wait %v outside [0, %v]", sp.Time, sp.Wait, sp.Dur)
			}
		case obs.SpanCommit:
			commits++
		}
	}
	if applies != 2 {
		t.Errorf("recorded %d monitor.apply spans, want 2", applies)
	}
	if commits != 2 {
		t.Errorf("engine emitted %d commit spans through the monitor's sink, want 2", commits)
	}
	if got := metrics.LockWaitSeconds.Count(); got != 2 {
		t.Errorf("lock-wait observations = %d, want 2", got)
	}
	// A rejected commit still emits the span, carrying the error.
	if _, err := m.Apply(1, ins("fire", 1)); err == nil {
		t.Fatal("stale timestamp accepted")
	}
	var sawErr bool
	for _, sp := range rec.Snapshot() {
		if sp.Name == obs.SpanMonitorApply && sp.Err != nil {
			sawErr = true
		}
	}
	if !sawErr {
		t.Error("failed Apply did not surface its error on the span")
	}
}
