package monitor

import (
	"bufio"
	"net"
	"strings"
	"testing"
	"time"
)

// TestCommitsProceedDuringStalledMetricsRead pins the lock discipline
// of the read-only protocol commands: a client that requests "metrics"
// and then stops reading leaves the handler blocked mid-write on the
// connection, and commits must keep flowing while it is. net.Pipe has
// no buffering, so the handler is genuinely wedged on the stalled
// reader for the whole middle of the test.
func TestCommitsProceedDuringStalledMetricsRead(t *testing.T) {
	m, _ := observedMonitor(t)
	if _, err := m.Apply(0, ins("fire", 7)); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(m)

	client, server := net.Pipe()
	defer client.Close()
	handlerDone := make(chan struct{})
	go func() {
		defer close(handlerDone)
		srv.handle(server)
	}()

	if _, err := client.Write([]byte("metrics\n")); err != nil {
		t.Fatal(err)
	}
	// One byte proves the handler is mid-exposition; not reading further
	// wedges it there.
	one := make([]byte, 1)
	if _, err := client.Read(one); err != nil {
		t.Fatal(err)
	}

	committed := make(chan error, 1)
	go func() {
		_, err := m.Apply(100, ins("hire", 7))
		committed <- err
	}()
	select {
	case err := <-committed:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("commit stalled behind a mid-stream metrics read")
	}

	// Unwedge the handler and check the exposition completed intact.
	r := bufio.NewReader(client)
	var saw bool
	deadline := time.Now().Add(5 * time.Second)
	for {
		client.SetReadDeadline(deadline)
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("draining exposition: %v", err)
		}
		line = string(one) + line // splice the probe byte back onto the first line
		one = one[:0]
		if strings.TrimSpace(line) == "# EOF" {
			saw = true
			break
		}
	}
	if !saw {
		t.Fatal("exposition never terminated with # EOF")
	}
	if _, err := client.Write([]byte("quit\n")); err != nil {
		t.Fatal(err)
	}
	<-handlerDone
}

// TestLintServedWithoutCommitLock holds the commit lock and calls
// Diagnostics — the lint command's backing read — which must return
// anyway: diagnostics are immutable after New, so a slow lint reader
// can never stall commits.
func TestLintServedWithoutCommitLock(t *testing.T) {
	m, _ := observedMonitor(t)
	m.mu.Lock()
	defer m.mu.Unlock()
	done := make(chan int, 1)
	go func() { done <- len(m.Diagnostics()) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Diagnostics blocked on the commit lock")
	}
}
