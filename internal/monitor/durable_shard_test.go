package monitor

import (
	"fmt"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"rtic/internal/check"
	"rtic/internal/obs"
	"rtic/internal/schema"
	"rtic/internal/storage"
	"rtic/internal/tuple"
	"rtic/internal/wal"
	"rtic/internal/workload"
)

func shardedMonitor(t *testing.T, shards int) *Monitor {
	t.Helper()
	s := schema.NewBuilder().Relation("hire", 1).Relation("fire", 1).MustBuild()
	m, err := New(s, []workload.ConstraintSpec{
		{Name: "no_quick_rehire", Source: "hire(e) -> not once[0,365] fire(e)"},
	}, WithShards(shards))
	if err != nil {
		t.Fatal(err)
	}
	m.SetObserver(&obs.Observer{Metrics: obs.NewMetrics(obs.NewRegistry())})
	return m
}

func openShardLogs(t *testing.T, dir string, n int) []*wal.Log {
	t.Helper()
	logs := make([]*wal.Log, n)
	for i := range logs {
		l, err := wal.Open(filepath.Join(dir, fmt.Sprintf("state.wal.%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		logs[i] = l
	}
	return logs
}

func closeShardLogs(t *testing.T, logs []*wal.Log) {
	t.Helper()
	for _, l := range logs {
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestShardedKillAndRecoverMatchesUninterrupted drives half a trace
// into a sharded durable monitor, "crashes" (abandons the monitor and
// its journals without any shutdown), recovers a fresh sharded monitor
// by replaying the per-shard journals, and finishes the trace. The
// recovered half's violations and the final stats must match one
// uninterrupted sharded run.
func TestShardedKillAndRecoverMatchesUninterrupted(t *testing.T) {
	const shards = 3
	trace := hrTrace(30)
	half := len(trace) / 2

	// Reference: uninterrupted sharded run.
	ref := shardedMonitor(t, shards)
	var refVs [][]check.Violation
	for _, st := range trace {
		vs, err := ref.Apply(st.t, st.tx)
		if err != nil {
			t.Fatal(err)
		}
		refVs = append(refVs, vs)
	}

	// Durable run, killed after half the trace.
	dir := t.TempDir()
	m1 := shardedMonitor(t, shards)
	logs1 := openShardLogs(t, dir, shards)
	d1, err := NewShardedDurable(m1, logs1)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := d1.Recover(); err != nil || n != 0 {
		t.Fatalf("Recover on empty journals = (%d, %v), want (0, nil)", n, err)
	}
	d1.Attach()
	for _, st := range trace[:half] {
		if _, err := m1.Apply(st.t, st.tx); err != nil {
			t.Fatal(err)
		}
	}
	for _, l := range logs1 {
		if l.Records() != half {
			t.Fatalf("journal %s holds %d records, want %d", l.Path(), l.Records(), half)
		}
	}
	closeShardLogs(t, logs1) // flush only; the monitor is abandoned un-shut-down

	// Recover into a fresh monitor and finish the trace.
	m2 := shardedMonitor(t, shards)
	logs2 := openShardLogs(t, dir, shards)
	defer closeShardLogs(t, logs2)
	d2, err := NewShardedDurable(m2, logs2)
	if err != nil {
		t.Fatal(err)
	}
	applied, err := d2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if applied != half {
		t.Fatalf("Recover applied %d commits, want %d", applied, half)
	}
	if m2.Len() != half || m2.Now() != trace[half-1].t {
		t.Fatalf("recovered monitor at (len=%d, now=%d), want (%d, %d)",
			m2.Len(), m2.Now(), half, trace[half-1].t)
	}
	d2.Attach()
	var gotVs [][]check.Violation
	for _, st := range trace[half:] {
		vs, err := m2.Apply(st.t, st.tx)
		if err != nil {
			t.Fatal(err)
		}
		gotVs = append(gotVs, vs)
	}
	if got, want := violationKeys(gotVs), violationKeys(refVs[half:]); !reflect.DeepEqual(got, want) {
		t.Fatalf("post-recovery violations diverge:\n got %v\nwant %v", got, want)
	}
	if got, want := m2.Stats(), ref.Stats(); got.Entries != want.Entries || got.Timestamps != want.Timestamps {
		t.Fatalf("recovered stats = %+v, want entries/timestamps of %+v", got, want)
	}
	if h := d2.Health(); h.Status != "ok" || h.ReplayedRecords != half {
		t.Fatalf("Health() = %+v, want ok with %d replayed", h, half)
	}
}

// TestShardedRecoverTruncatesTornJournals simulates a crash that
// journaled a commit on only some shards: the extra records must be
// discarded (not replayed), and the longer journals truncated back to
// the common prefix so the next run appends aligned.
func TestShardedRecoverTruncatesTornJournals(t *testing.T) {
	const shards = 3
	dir := t.TempDir()
	trace := hrTrace(12)

	m1 := shardedMonitor(t, shards)
	logs1 := openShardLogs(t, dir, shards)
	d1, err := NewShardedDurable(m1, logs1)
	if err != nil {
		t.Fatal(err)
	}
	d1.Attach()
	for _, st := range trace {
		if _, err := m1.Apply(st.t, st.tx); err != nil {
			t.Fatal(err)
		}
	}
	// Tear the tail: shards 0 and 2 journal one more commit, shard 1
	// crashes before its append.
	torn := storage.NewTransaction().Insert("fire", tuple.Ints(1))
	for _, i := range []int{0, 2} {
		if err := logs1[i].AppendTx(uint64(len(trace)*10), torn); err != nil {
			t.Fatal(err)
		}
	}
	closeShardLogs(t, logs1)

	m2 := shardedMonitor(t, shards)
	logs2 := openShardLogs(t, dir, shards)
	d2, err := NewShardedDurable(m2, logs2)
	if err != nil {
		t.Fatal(err)
	}
	applied, err := d2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if applied != len(trace) {
		t.Fatalf("Recover applied %d commits, want %d (torn tail discarded)", applied, len(trace))
	}
	if m2.Now() != trace[len(trace)-1].t {
		t.Fatalf("recovered to t=%d, want %d", m2.Now(), trace[len(trace)-1].t)
	}
	for i, l := range logs2 {
		if l.Records() != len(trace) {
			t.Fatalf("journal %d holds %d records after recovery, want %d", i, l.Records(), len(trace))
		}
	}
	// The truncation must hold on disk, not only in memory.
	closeShardLogs(t, logs2)
	logs3 := openShardLogs(t, dir, shards)
	defer closeShardLogs(t, logs3)
	for i, l := range logs3 {
		if l.Records() != len(trace) {
			t.Fatalf("journal %d holds %d records after reopen, want %d", i, l.Records(), len(trace))
		}
	}
}

// TestShardedRecoverEveryTornSubset crashes a run at every (shard
// subset, prefix length) combination the torn-tail model allows and
// proves recovery always lands on a consistent global state: the
// common prefix replayed, the tail gone, and the run completable.
func TestShardedRecoverEveryTornSubset(t *testing.T) {
	const shards = 3
	trace := hrTrace(8)
	full := len(trace)

	for prefix := 0; prefix < full; prefix++ {
		for mask := 1; mask < 1<<shards-1; mask++ { // proper nonempty subsets got the extra commit
			dir := t.TempDir()
			m1 := shardedMonitor(t, shards)
			logs1 := openShardLogs(t, dir, shards)
			d1, err := NewShardedDurable(m1, logs1)
			if err != nil {
				t.Fatal(err)
			}
			d1.Attach()
			for _, st := range trace[:prefix] {
				if _, err := m1.Apply(st.t, st.tx); err != nil {
					t.Fatal(err)
				}
			}
			// The crash commit reaches only the journals in mask.
			crashStep := trace[prefix]
			parts := m1.Router().Split(crashStep.tx)
			for i := 0; i < shards; i++ {
				if mask&(1<<i) != 0 {
					if err := logs1[i].AppendTx(crashStep.t, parts[i]); err != nil {
						t.Fatal(err)
					}
				}
			}
			closeShardLogs(t, logs1)

			m2 := shardedMonitor(t, shards)
			logs2 := openShardLogs(t, dir, shards)
			d2, err := NewShardedDurable(m2, logs2)
			if err != nil {
				t.Fatal(err)
			}
			applied, err := d2.Recover()
			if err != nil {
				t.Fatalf("prefix=%d mask=%b: Recover: %v", prefix, mask, err)
			}
			if applied != prefix {
				t.Fatalf("prefix=%d mask=%b: applied %d, want %d", prefix, mask, applied, prefix)
			}
			d2.Attach()
			// The run must be completable from the recovered state,
			// re-committing the commit whose journaling tore.
			for _, st := range trace[prefix:] {
				if _, err := m2.Apply(st.t, st.tx); err != nil {
					t.Fatalf("prefix=%d mask=%b: resume at t=%d: %v", prefix, mask, st.t, err)
				}
			}
			if m2.Len() != full {
				t.Fatalf("prefix=%d mask=%b: finished at len=%d, want %d", prefix, mask, m2.Len(), full)
			}
			closeShardLogs(t, logs2)
		}
	}
}

// TestShardedDurableValidation covers the constructor's error paths.
func TestShardedDurableValidation(t *testing.T) {
	s := schema.NewBuilder().Relation("hire", 1).Relation("fire", 1).MustBuild()
	unsharded, err := New(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewShardedDurable(unsharded, nil); err == nil {
		t.Fatal("NewShardedDurable accepted an unsharded monitor")
	}

	m := shardedMonitor(t, 3)
	if _, err := NewShardedDurable(m, make([]*wal.Log, 2)); err == nil || !strings.Contains(err.Error(), "3 journals") {
		t.Fatalf("wrong journal count: err = %v, want a 3-journals complaint", err)
	}
	if _, err := NewShardedDurable(m, make([]*wal.Log, 3)); err == nil || !strings.Contains(err.Error(), "nil") {
		t.Fatalf("nil journal: err = %v, want a nil complaint", err)
	}
}

// TestShardedRecoverRejectsDisagreeingTimestamps feeds Recover journals
// whose records carry different timestamps at the same index — the
// signature of swapped or cross-run journal files — and expects a
// loud error instead of a silently wrong merge.
func TestShardedRecoverRejectsDisagreeingTimestamps(t *testing.T) {
	const shards = 2
	dir := t.TempDir()
	logs := openShardLogs(t, dir, shards)
	tx := storage.NewTransaction().Insert("hire", tuple.Ints(1))
	if err := logs[0].AppendTx(10, tx); err != nil {
		t.Fatal(err)
	}
	if err := logs[1].AppendTx(20, tx); err != nil {
		t.Fatal(err)
	}
	closeShardLogs(t, logs)

	m := shardedMonitor(t, shards)
	logs2 := openShardLogs(t, dir, shards)
	defer closeShardLogs(t, logs2)
	d, err := NewShardedDurable(m, logs2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Recover(); err == nil || !strings.Contains(err.Error(), "disagree") {
		t.Fatalf("Recover on disagreeing journals: err = %v, want a disagreement error", err)
	}
}

// TestShardedJournalDegradesNotFails closes a journal out from under
// the hook: the commit still succeeds (the engine already applied it)
// and Health turns degraded.
func TestShardedJournalDegradesNotFails(t *testing.T) {
	const shards = 2
	dir := t.TempDir()
	m := shardedMonitor(t, shards)
	logs := openShardLogs(t, dir, shards)
	d, err := NewShardedDurable(m, logs)
	if err != nil {
		t.Fatal(err)
	}
	d.Attach()
	if _, err := m.Apply(10, storage.NewTransaction().Insert("hire", tuple.Ints(1))); err != nil {
		t.Fatal(err)
	}
	if h := d.Health(); h.Status != "ok" {
		t.Fatalf("healthy journaling reported %+v", h)
	}
	logs[1].Close()
	if _, err := m.Apply(20, storage.NewTransaction().Insert("hire", tuple.Ints(2))); err != nil {
		t.Fatalf("commit failed on journal error (should degrade, not fail): %v", err)
	}
	if h := d.Health(); h.Status != "degraded" || h.LastError == "" {
		t.Fatalf("Health() = %+v, want degraded with an error", h)
	}
	logs[0].Close()
}
