package monitor

import (
	"fmt"
	"net"
	"strings"
	"testing"

	"rtic/internal/obs"
	"rtic/internal/storage"
	"rtic/internal/tuple"
	"rtic/internal/workload"

	rschema "rtic/internal/schema"
)

func observedMonitor(t *testing.T) (*Monitor, *obs.Metrics) {
	t.Helper()
	s := rschema.NewBuilder().Relation("hire", 1).Relation("fire", 1).MustBuild()
	m, err := New(s, []workload.ConstraintSpec{
		{Name: "no_quick_rehire", Source: "hire(e) -> not once[0,365] fire(e)"},
	})
	if err != nil {
		t.Fatal(err)
	}
	metrics := obs.NewMetrics(obs.NewRegistry())
	m.SetObserver(&obs.Observer{Metrics: metrics})
	return m, metrics
}

func TestMonitorCountersAdvance(t *testing.T) {
	m, metrics := observedMonitor(t)
	if _, err := m.Apply(0, ins("fire", 7)); err != nil {
		t.Fatal(err)
	}
	vs, err := m.Apply(100, ins("hire", 7))
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 1 {
		t.Fatalf("want 1 violation, got %d", len(vs))
	}
	if got := metrics.Commits.Value(); got != 2 {
		t.Errorf("commits = %d, want 2", got)
	}
	if got := metrics.Violations.With("no_quick_rehire").Value(); got != 1 {
		t.Errorf("violations = %d, want 1", got)
	}
	if got := metrics.CommitSeconds.Count(); got != 2 {
		t.Errorf("latency observations = %d, want 2", got)
	}
	// Stale timestamp: counted as an error, not a commit.
	if _, err := m.Apply(50, ins("fire", 1)); err == nil {
		t.Fatal("stale timestamp accepted")
	}
	if got := metrics.CommitErrors.Value(); got != 1 {
		t.Errorf("commit errors = %d, want 1", got)
	}
	// Aux gauges mirror Stats().
	st := m.Stats()
	if got := metrics.AuxNodes.Value(); got != int64(st.Nodes) {
		t.Errorf("aux nodes gauge = %d, Stats says %d", got, st.Nodes)
	}
	if got := metrics.AuxBytes.Value(); got != int64(st.Bytes) {
		t.Errorf("aux bytes gauge = %d, Stats says %d", got, st.Bytes)
	}
}

func TestMonitorDroppedViolationsCounter(t *testing.T) {
	m, metrics := observedMonitor(t)
	ch, cancel := m.Subscribe(1)
	defer cancel()
	fireBoth := storage.NewTransaction().
		Insert("fire", tuple.Ints(7)).
		Insert("fire", tuple.Ints(8))
	if _, err := m.Apply(0, fireBoth); err != nil {
		t.Fatal(err)
	}
	// Two violating commits against an unread buffer of one: the first
	// violation fills it, the second drops.
	if _, err := m.Apply(10, ins("hire", 7)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Apply(20, ins("hire", 8)); err != nil {
		t.Fatal(err)
	}
	_ = ch
	if m.Dropped() == 0 {
		t.Fatal("expected drops with a full subscriber buffer")
	}
	if got := metrics.DroppedViolations.Value(); got != uint64(m.Dropped()) {
		t.Errorf("dropped counter = %d, Dropped() = %d", got, m.Dropped())
	}
}

func startObservedServer(t *testing.T) (net.Addr, *obs.Metrics) {
	t.Helper()
	m, metrics := observedMonitor(t)
	srv := NewServer(m)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l) //nolint:errcheck — returns when the listener closes
	t.Cleanup(func() {
		l.Close()
		srv.Close()
	})
	return l.Addr(), metrics
}

func TestServerMetricsCommand(t *testing.T) {
	addr, _ := startObservedServer(t)
	c := dial(t, addr)
	c.send(t, "@0 +fire(7)")
	if got := c.recv(t); got != "ok 0" {
		t.Fatalf("reply = %q", got)
	}
	c.send(t, "@100 +hire(7)")
	if got := c.recv(t); !strings.HasPrefix(got, "violation") {
		t.Fatalf("reply = %q", got)
	}
	if got := c.recv(t); got != "ok 1" {
		t.Fatalf("reply = %q", got)
	}

	c.send(t, "metrics")
	var lines []string
	for {
		line := c.recv(t)
		if line == "# EOF" {
			break
		}
		lines = append(lines, line)
	}
	body := strings.Join(lines, "\n")
	for _, want := range []string{
		"rtic_commits_total 2",
		`rtic_violations_total{constraint="no_quick_rehire"} 1`,
		"rtic_commit_duration_seconds_count 2",
		"rtic_monitor_connections_active 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics reply missing %q", want)
		}
	}

	// The connection still speaks the protocol after a scrape.
	c.send(t, "stats")
	if got := c.recv(t); !strings.HasPrefix(got, "stats nodes=") {
		t.Fatalf("stats after metrics = %q", got)
	}
}

func TestServerMetricsCommandWithoutObserver(t *testing.T) {
	_, addr := startServer(t) // plain server, no observer
	c := dial(t, addr)
	c.send(t, "metrics")
	if got := c.recv(t); !strings.HasPrefix(got, "error metrics not enabled") {
		t.Fatalf("reply = %q", got)
	}
}

func TestServerConnectionCounters(t *testing.T) {
	addr, metrics := startObservedServer(t)
	a := dial(t, addr)
	a.send(t, "@1 +fire(1)")
	if got := a.recv(t); got != "ok 0" {
		t.Fatalf("reply = %q", got)
	}
	if got := metrics.Connections.Value(); got != 1 {
		t.Errorf("connections = %d, want 1", got)
	}
	if got := metrics.ConnectionsActive.Value(); got != 1 {
		t.Errorf("active = %d, want 1", got)
	}
	a.send(t, "@bogus")
	if got := a.recv(t); !strings.HasPrefix(got, "error") {
		t.Fatalf("reply = %q", got)
	}
	if got := metrics.ProtocolErrors.Value(); got != 1 {
		t.Errorf("protocol errors = %d, want 1", got)
	}
}

func TestServerLongLine(t *testing.T) {
	_, addr := startServer(t)
	c := dial(t, addr)

	// A legitimate transaction far beyond the old 64 KiB scanner limit:
	// ~50k tuples, roughly 600 KiB on one line.
	var b strings.Builder
	b.WriteString("@1")
	for i := 0; i < 50_000; i++ {
		fmt.Fprintf(&b, " +fire(%d)", i)
	}
	c.send(t, b.String())
	if got := c.recv(t); got != "ok 0" {
		t.Fatalf("long line reply = %q", got)
	}

	// A line over the 1 MiB cap earns an error reply instead of a
	// silent disconnect.
	b.Reset()
	b.WriteString("@2")
	for i := 0; i < 200_000; i++ {
		fmt.Fprintf(&b, " +fire(%d)", i)
	}
	c.send(t, b.String())
	if got := c.recv(t); !strings.HasPrefix(got, "error line exceeds") {
		t.Fatalf("oversized line reply = %q", got)
	}
	// The connection closes after a scan error.
	if _, err := c.r.ReadString('\n'); err == nil {
		t.Fatal("connection still open after oversized line")
	}
}
