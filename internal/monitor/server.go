package monitor

import (
	"bufio"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"

	"rtic/internal/spec"
)

// Server speaks a line protocol over any net.Listener, sharing one
// Monitor across all connections:
//
//	client: @100 -fire(7) +hire(7)       -- one transaction per line
//	server: violation <constraint> ...   -- zero or more, then
//	server: ok 1                         -- violation count, or
//	server: error <message>
//
// Additional client commands:
//
//	stats   -> "stats nodes=N entries=E timestamps=T bytes=B"
//	quit    -> closes the connection
//
// Timestamps are global across clients (the monitor serializes commits),
// so interleaved producers must coordinate their clocks; a stale
// timestamp earns an "error" reply and the connection stays open.
type Server struct {
	M *Monitor

	mu    sync.Mutex
	conns map[net.Conn]bool
}

// NewServer wraps a monitor.
func NewServer(m *Monitor) *Server {
	return &Server{M: m, conns: make(map[net.Conn]bool)}
}

// Serve accepts connections until the listener is closed.
func (s *Server) Serve(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		s.mu.Lock()
		s.conns[conn] = true
		s.mu.Unlock()
		go s.handle(conn)
	}
}

// Close terminates every open connection.
func (s *Server) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for conn := range s.conns {
		conn.Close()
		delete(s.conns, conn)
	}
}

func (s *Server) handle(conn net.Conn) {
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	sc := bufio.NewScanner(conn)
	w := bufio.NewWriter(conn)
	reply := func(format string, args ...interface{}) bool {
		fmt.Fprintf(w, format+"\n", args...)
		return w.Flush() == nil
	}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "" || strings.HasPrefix(line, "--"):
			continue
		case line == "quit":
			return
		case line == "stats":
			st := s.M.Stats()
			if !reply("stats nodes=%d entries=%d timestamps=%d bytes=%d",
				st.Nodes, st.Entries, st.Timestamps, st.Bytes) {
				return
			}
		case line == "recent" || strings.HasPrefix(line, "recent "):
			n := 10
			if rest := strings.TrimSpace(strings.TrimPrefix(line, "recent")); rest != "" {
				parsed, err := strconv.Atoi(rest)
				if err != nil || parsed < 1 {
					if !reply("error recent wants a positive count, got %q", rest) {
						return
					}
					continue
				}
				n = parsed
			}
			vs := s.M.Recent(n)
			for _, v := range vs {
				if !reply("violation %s", v.String()) {
					return
				}
			}
			if !reply("ok %d", len(vs)) {
				return
			}
		default:
			t, tx, ok, err := spec.ParseLogLine(line)
			if err != nil {
				if !reply("error %v", err) {
					return
				}
				continue
			}
			if !ok {
				continue
			}
			vs, err := s.M.Apply(t, tx)
			if err != nil {
				if !reply("error %v", err) {
					return
				}
				continue
			}
			for _, v := range vs {
				if !reply("violation %s", v.String()) {
					return
				}
			}
			if !reply("ok %d", len(vs)) {
				return
			}
		}
	}
}
