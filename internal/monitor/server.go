package monitor

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"

	"rtic/internal/spec"
)

// maxLineBytes caps one protocol line (a transaction can carry many
// tuples); lines beyond the cap earn an "error" reply instead of a
// silent disconnect.
const maxLineBytes = 1 << 20

// Server speaks a line protocol over any net.Listener, sharing one
// Monitor across all connections:
//
//	client: @100 -fire(7) +hire(7)       -- one transaction per line
//	server: violation <constraint> ...   -- zero or more, then
//	server: ok 1                         -- violation count, or
//	server: error <message>
//
// Additional client commands:
//
//	stats   -> "stats nodes=N entries=E timestamps=T bytes=B"
//	metrics -> the full Prometheus text exposition, terminated by a
//	           line reading "# EOF" (requires an attached observer
//	           with metrics; "error metrics not enabled" otherwise)
//	quit    -> closes the connection
//
// Lines up to 1 MiB are accepted; a longer line (or any other read
// error) earns a final "error" reply before the connection closes.
// Timestamps are global across clients (the monitor serializes commits),
// so interleaved producers must coordinate their clocks; a stale
// timestamp earns an "error" reply and the connection stays open.
//
// When the shared monitor carries an observer (Monitor.SetObserver),
// the server counts accepted/active connections and error replies.
type Server struct {
	M *Monitor

	mu    sync.Mutex
	conns map[net.Conn]bool
}

// NewServer wraps a monitor.
func NewServer(m *Monitor) *Server {
	return &Server{M: m, conns: make(map[net.Conn]bool)}
}

// Serve accepts connections until the listener is closed.
func (s *Server) Serve(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		s.mu.Lock()
		s.conns[conn] = true
		s.mu.Unlock()
		go s.handle(conn)
	}
}

// Close terminates every open connection.
func (s *Server) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for conn := range s.conns {
		conn.Close()
		delete(s.conns, conn)
	}
}

func (s *Server) handle(conn net.Conn) {
	m, _ := s.M.Observer().Parts()
	if m != nil {
		m.Connections.Inc()
		m.ConnectionsActive.Inc()
	}
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
		if m != nil {
			m.ConnectionsActive.Dec()
		}
	}()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 4096), maxLineBytes)
	w := bufio.NewWriter(conn)
	reply := func(format string, args ...interface{}) bool {
		fmt.Fprintf(w, format+"\n", args...)
		return w.Flush() == nil
	}
	replyError := func(format string, args ...interface{}) bool {
		if m != nil {
			m.ProtocolErrors.Inc()
		}
		return reply("error "+format, args...)
	}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "" || strings.HasPrefix(line, "--"):
			continue
		case line == "quit":
			return
		case line == "stats":
			st := s.M.Stats()
			if !reply("stats nodes=%d entries=%d timestamps=%d bytes=%d",
				st.Nodes, st.Entries, st.Timestamps, st.Bytes) {
				return
			}
		case line == "metrics":
			if m == nil {
				if !replyError("metrics not enabled") {
					return
				}
				continue
			}
			if err := m.Registry().WritePrometheus(w); err != nil {
				return
			}
			if !reply("# EOF") {
				return
			}
		case line == "recent" || strings.HasPrefix(line, "recent "):
			n := 10
			if rest := strings.TrimSpace(strings.TrimPrefix(line, "recent")); rest != "" {
				parsed, err := strconv.Atoi(rest)
				if err != nil || parsed < 1 {
					if !replyError("recent wants a positive count, got %q", rest) {
						return
					}
					continue
				}
				n = parsed
			}
			vs := s.M.Recent(n)
			for _, v := range vs {
				if !reply("violation %s", v.String()) {
					return
				}
			}
			if !reply("ok %d", len(vs)) {
				return
			}
		default:
			t, tx, ok, err := spec.ParseLogLine(line)
			if err != nil {
				if !replyError("%v", err) {
					return
				}
				continue
			}
			if !ok {
				continue
			}
			vs, err := s.M.Apply(t, tx)
			if err != nil {
				if !replyError("%v", err) {
					return
				}
				continue
			}
			for _, v := range vs {
				if !reply("violation %s", v.String()) {
					return
				}
			}
			if !reply("ok %d", len(vs)) {
				return
			}
		}
	}
	// A scan error (oversized line, mid-line disconnect) would otherwise
	// kill the loop silently; tell the client what happened before the
	// deferred close. bufio reports ErrTooLong for lines over the cap.
	if err := sc.Err(); err != nil {
		if errors.Is(err, bufio.ErrTooLong) {
			replyError("line exceeds %d bytes", maxLineBytes)
			return
		}
		replyError("read: %v", err)
	}
}
