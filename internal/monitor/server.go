package monitor

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"rtic/internal/spec"
)

// maxLineBytes caps one protocol line (a transaction can carry many
// tuples); lines beyond the cap earn an "error" reply instead of a
// silent disconnect.
const maxLineBytes = 1 << 20

// Server speaks a line protocol over any net.Listener, sharing one
// Monitor across all connections:
//
//	client: @100 -fire(7) +hire(7)       -- one transaction per line
//	server: violation <constraint> ...   -- zero or more, then
//	server: ok 1                         -- violation count, or
//	server: error <message>
//
// Additional client commands:
//
//	stats   -> "stats nodes=N entries=E timestamps=T bytes=B"
//	metrics -> the full Prometheus text exposition, terminated by a
//	           line reading "# EOF" (requires an attached observer
//	           with metrics; "error metrics not enabled" otherwise)
//	lint    -> one "diag <severity> <rule> <constraint> <message>" line
//	           per linter finding recorded at spec load ("-" as the
//	           constraint for spec-level findings), then "ok N"
//	quit    -> closes the connection
//
// Lines up to 1 MiB are accepted; a longer line (or any other read
// error) earns a final "error" reply before the connection closes.
// Timestamps are global across clients (the monitor serializes commits),
// so interleaved producers must coordinate their clocks; a stale
// timestamp earns an "error" reply and the connection stays open.
//
// When the shared monitor carries an observer (Monitor.SetObserver),
// the server counts accepted/active connections and error replies.
type Server struct {
	M *Monitor

	maxConns    int           // 0 = unlimited
	idleTimeout time.Duration // 0 = no read deadline

	mu    sync.Mutex
	conns map[net.Conn]bool
}

// ServerOption configures a server at construction time.
type ServerOption func(*Server)

// WithMaxConns caps concurrently open connections (0 = unlimited). A
// connection arriving at the cap receives one "error" reply and is
// closed, so a client can tell a full server from a dead one.
func WithMaxConns(n int) ServerOption {
	return func(s *Server) { s.maxConns = n }
}

// WithIdleTimeout closes connections whose socket stays silent for d
// (0 = never); without it a stalled client pins its goroutine forever.
// The deadline is refreshed on every read, so a slowly streaming client
// is never cut off.
func WithIdleTimeout(d time.Duration) ServerOption {
	return func(s *Server) { s.idleTimeout = d }
}

// NewServer wraps a monitor.
func NewServer(m *Monitor, opts ...ServerOption) *Server {
	s := &Server{M: m, conns: make(map[net.Conn]bool)}
	for _, opt := range opts {
		opt(s)
	}
	return s
}

// acceptBackoff bounds the retry delays on temporary Accept errors.
const (
	acceptBackoffMin = 5 * time.Millisecond
	acceptBackoffMax = time.Second
)

// Serve accepts connections until the listener is closed. Temporary
// accept failures (EMFILE, ECONNABORTED, ...) are retried with
// exponential backoff instead of killing the serve loop — under fd
// exhaustion the server degrades instead of dying.
func (s *Server) Serve(l net.Listener) error {
	var backoff time.Duration
	for {
		conn, err := l.Accept()
		if err != nil {
			if ne, ok := err.(interface{ Temporary() bool }); ok && ne.Temporary() {
				if backoff == 0 {
					backoff = acceptBackoffMin
				} else if backoff *= 2; backoff > acceptBackoffMax {
					backoff = acceptBackoffMax
				}
				time.Sleep(backoff)
				continue
			}
			return err
		}
		backoff = 0
		s.mu.Lock()
		if s.maxConns > 0 && len(s.conns) >= s.maxConns {
			s.mu.Unlock()
			s.reject(conn)
			continue
		}
		s.conns[conn] = true
		s.mu.Unlock()
		go s.handle(conn)
	}
}

// reject tells a connection the server is at capacity and closes it.
func (s *Server) reject(conn net.Conn) {
	if m, _ := s.M.Observer().Parts(); m != nil {
		m.ConnectionsRejected.Inc()
	}
	go func() {
		conn.SetWriteDeadline(time.Now().Add(time.Second))
		fmt.Fprintf(conn, "error server at connection limit (%d)\n", s.maxConns)
		conn.Close() //rtic:errok tearing down a rejected connection; there is no one to report the error to
	}()
}

// Close terminates every open connection.
func (s *Server) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for conn := range s.conns {
		conn.Close() //rtic:errok server shutdown discards every connection unconditionally
		delete(s.conns, conn)
	}
}

func (s *Server) handle(conn net.Conn) {
	m, _ := s.M.Observer().Parts()
	if m != nil {
		m.Connections.Inc()
		m.ConnectionsActive.Inc()
	}
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close() //rtic:errok session teardown; a close error on a finished connection changes nothing
		if m != nil {
			m.ConnectionsActive.Dec()
		}
	}()
	var src io.Reader = conn
	if s.idleTimeout > 0 {
		src = &idleReader{conn: conn, timeout: s.idleTimeout}
	}
	sc := bufio.NewScanner(src)
	sc.Buffer(make([]byte, 0, 4096), maxLineBytes)
	w := bufio.NewWriter(conn)
	reply := func(format string, args ...interface{}) bool {
		fmt.Fprintf(w, format+"\n", args...)
		return w.Flush() == nil
	}
	replyError := func(format string, args ...interface{}) bool {
		if m != nil {
			m.ProtocolErrors.Inc()
		}
		return reply("error "+format, args...)
	}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "" || strings.HasPrefix(line, "--"):
			continue
		case line == "quit":
			return
		case line == "stats":
			st := s.M.Stats()
			if !reply("stats nodes=%d entries=%d timestamps=%d bytes=%d",
				st.Nodes, st.Entries, st.Timestamps, st.Bytes) {
				return
			}
		case line == "metrics":
			if m == nil {
				if !replyError("metrics not enabled") {
					return
				}
				continue
			}
			// Render the full exposition to memory first: the conn write
			// below can stall on a slow reader for as long as the idle
			// timeout allows, and nothing shared with the commit path may
			// be held while it does.
			var expo bytes.Buffer
			if err := m.Registry().WritePrometheus(&expo); err != nil {
				return
			}
			if _, err := w.Write(expo.Bytes()); err != nil {
				return
			}
			if !reply("# EOF") {
				return
			}
		case line == "lint":
			ds := s.M.Diagnostics()
			for _, d := range ds {
				name := d.Constraint
				if name == "" {
					name = "-"
				}
				if !reply("diag %s %s %s %s", d.Severity, d.Rule, name, d.Message) {
					return
				}
			}
			if !reply("ok %d", len(ds)) {
				return
			}
		case line == "recent" || strings.HasPrefix(line, "recent "):
			n := 10
			if rest := strings.TrimSpace(strings.TrimPrefix(line, "recent")); rest != "" {
				parsed, err := strconv.Atoi(rest)
				if err != nil || parsed < 1 {
					if !replyError("recent wants a positive count, got %q", rest) {
						return
					}
					continue
				}
				n = parsed
			}
			vs := s.M.Recent(n)
			for _, v := range vs {
				if !reply("violation %s", v.String()) {
					return
				}
			}
			if !reply("ok %d", len(vs)) {
				return
			}
		default:
			t, tx, ok, err := spec.ParseLogLine(line)
			if err != nil {
				if !replyError("%v", err) {
					return
				}
				continue
			}
			if !ok {
				continue
			}
			vs, err := s.M.Apply(t, tx)
			if err != nil {
				if !replyError("%v", err) {
					return
				}
				continue
			}
			for _, v := range vs {
				if !reply("violation %s", v.String()) {
					return
				}
			}
			if !reply("ok %d", len(vs)) {
				return
			}
		}
	}
	// A scan error (oversized line, mid-line disconnect) would otherwise
	// kill the loop silently; tell the client what happened before the
	// deferred close. bufio reports ErrTooLong for lines over the cap.
	if err := sc.Err(); err != nil {
		if errors.Is(err, bufio.ErrTooLong) {
			replyError("line exceeds %d bytes", maxLineBytes)
			return
		}
		if errors.Is(err, os.ErrDeadlineExceeded) {
			replyError("idle for more than %s, closing", s.idleTimeout)
			return
		}
		replyError("read: %v", err)
	}
}

// idleReader refreshes the connection's read deadline before every
// socket read, so the deadline measures idle time, not connection age.
type idleReader struct {
	conn    net.Conn
	timeout time.Duration
}

func (r *idleReader) Read(p []byte) (int, error) {
	if err := r.conn.SetReadDeadline(time.Now().Add(r.timeout)); err != nil {
		return 0, err
	}
	return r.conn.Read(p)
}
