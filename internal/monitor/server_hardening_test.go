package monitor

import (
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"rtic/internal/obs"
)

// tempError satisfies the Temporary() contract the accept loop retries on.
type tempError struct{}

func (tempError) Error() string   { return "injected temporary accept failure" }
func (tempError) Temporary() bool { return true }

// flakyListener fails Accept with temporary errors a configured number
// of times, then serves queued connections, then fails permanently.
type flakyListener struct {
	tempFails int
	conns     chan net.Conn
	accepts   int
}

func (l *flakyListener) Accept() (net.Conn, error) {
	l.accepts++
	if l.tempFails > 0 {
		l.tempFails--
		return nil, tempError{}
	}
	if c, ok := <-l.conns; ok {
		return c, nil
	}
	return nil, fmt.Errorf("listener closed")
}

func (l *flakyListener) Close() error   { close(l.conns); return nil }
func (l *flakyListener) Addr() net.Addr { return &net.TCPAddr{IP: net.IPv4zero} }

// TestServeRetriesTemporaryAcceptErrors proves the serve loop survives a
// burst of temporary accept failures (EMFILE-style) and still serves the
// connection behind them, instead of returning on the first error.
func TestServeRetriesTemporaryAcceptErrors(t *testing.T) {
	m, _ := hrMonitor(t)
	srv := NewServer(m)
	client, server := net.Pipe()
	defer client.Close()
	l := &flakyListener{tempFails: 4, conns: make(chan net.Conn, 1)}
	l.conns <- server

	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	t.Cleanup(srv.Close)

	// The connection behind the failures must still get service.
	client.SetDeadline(time.Now().Add(5 * time.Second))
	if _, err := client.Write([]byte("@1 +fire(3)\n")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	n, err := client.Read(buf)
	if err != nil || strings.TrimSpace(string(buf[:n])) != "ok 0" {
		t.Fatalf("reply = %q, err = %v", buf[:n], err)
	}

	// A permanent error still terminates Serve.
	l.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Serve returned nil on a permanent accept error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after a permanent accept error")
	}
	if l.accepts < 6 { // 4 temporary failures + 1 conn + 1 permanent
		t.Errorf("Accept called %d times, want at least 6", l.accepts)
	}
}

func startHardenedServer(t *testing.T, opts ...ServerOption) (*Server, net.Addr) {
	t.Helper()
	m, _ := hrMonitor(t)
	m.SetObserver(&obs.Observer{Metrics: obs.NewMetrics(obs.NewRegistry())})
	srv := NewServer(m, opts...)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l) //nolint:errcheck — returns when the listener closes
	t.Cleanup(func() {
		l.Close()
		srv.Close()
	})
	return srv, l.Addr()
}

// TestServerMaxConns fills the connection cap and expects the next
// client to be told the server is full — and service to resume once a
// slot frees up.
func TestServerMaxConns(t *testing.T) {
	srv, addr := startHardenedServer(t, WithMaxConns(1))

	first := dial(t, addr)
	first.send(t, "@1 +fire(1)")
	if got := first.recv(t); got != "ok 0" { // handle() running → slot taken
		t.Fatalf("first client reply = %q", got)
	}

	second := dial(t, addr)
	if got := second.recv(t); !strings.Contains(got, "connection limit (1)") {
		t.Fatalf("over-cap reply = %q, want a connection-limit error", got)
	}
	if _, err := second.r.ReadString('\n'); err == nil {
		t.Fatal("over-cap connection left open")
	}
	mm, _ := srv.M.Observer().Parts()
	if mm.ConnectionsRejected.Value() != 1 {
		t.Errorf("ConnectionsRejected = %d, want 1", mm.ConnectionsRejected.Value())
	}

	// Free the slot; a new client is eventually admitted (the handler's
	// deferred cleanup races the next accept, so poll).
	first.send(t, "quit")
	deadline := time.Now().Add(5 * time.Second)
	for {
		third := dial(t, addr)
		third.send(t, "@2 +fire(2)")
		if got := third.recv(t); got == "ok 0" {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("no client admitted after the slot freed up")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServerIdleTimeout expects a silent connection to be told why it is
// being closed, and a busy one to stay connected well past the timeout.
func TestServerIdleTimeout(t *testing.T) {
	_, addr := startHardenedServer(t, WithIdleTimeout(150*time.Millisecond))

	busy := dial(t, addr)
	idle := dial(t, addr)
	idle.send(t, "@1 +fire(1)")
	if got := idle.recv(t); got != "ok 0" {
		t.Fatalf("reply = %q", got)
	}

	// The busy client keeps talking across several timeout windows: the
	// deadline must refresh on every read.
	for i := 0; i < 5; i++ {
		time.Sleep(60 * time.Millisecond)
		busy.send(t, "stats")
		if got := busy.recv(t); !strings.HasPrefix(got, "stats ") {
			t.Fatalf("busy client cut off at round %d: %q", i, got)
		}
	}

	// The idle one is disconnected with an explanation.
	if got := idle.recv(t); !strings.Contains(got, "idle for more than") {
		t.Fatalf("idle disconnect reply = %q", got)
	}
	if _, err := idle.r.ReadString('\n'); err == nil {
		t.Fatal("idle connection left open after the deadline reply")
	}
}
