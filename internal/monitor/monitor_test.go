package monitor

import (
	"bytes"
	"sync"
	"testing"

	"rtic/internal/schema"
	"rtic/internal/storage"
	"rtic/internal/tuple"
	"rtic/internal/workload"
)

func hrMonitor(t *testing.T) (*Monitor, *schema.Schema) {
	t.Helper()
	s := schema.NewBuilder().Relation("hire", 1).Relation("fire", 1).MustBuild()
	m, err := New(s, []workload.ConstraintSpec{
		{Name: "no_quick_rehire", Source: "hire(e) -> not once[0,365] fire(e)"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return m, s
}

func ins(rel string, v int64) *storage.Transaction {
	return storage.NewTransaction().Insert(rel, tuple.Ints(v))
}

func TestMonitorApply(t *testing.T) {
	m, _ := hrMonitor(t)
	vs, err := m.Apply(0, ins("fire", 7))
	if err != nil || len(vs) != 0 {
		t.Fatalf("vs=%v err=%v", vs, err)
	}
	vs, err = m.Apply(100, ins("hire", 7))
	if err != nil || len(vs) != 1 {
		t.Fatalf("vs=%v err=%v", vs, err)
	}
	if m.Len() != 2 || m.Now() != 100 {
		t.Fatalf("Len=%d Now=%d", m.Len(), m.Now())
	}
}

func TestMonitorBadConstraint(t *testing.T) {
	s := schema.NewBuilder().Relation("p", 1).MustBuild()
	if _, err := New(s, []workload.ConstraintSpec{{Name: "c", Source: "(("}}); err == nil {
		t.Fatal("bad constraint accepted")
	}
}

func TestSubscribeReceivesViolations(t *testing.T) {
	m, _ := hrMonitor(t)
	ch, cancel := m.Subscribe(8)
	defer cancel()
	if _, err := m.Apply(0, ins("fire", 7)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Apply(100, ins("hire", 7)); err != nil {
		t.Fatal(err)
	}
	v := <-ch
	if v.Constraint != "no_quick_rehire" {
		t.Fatalf("received %v", v)
	}
}

func TestSubscribeCancelIdempotent(t *testing.T) {
	m, _ := hrMonitor(t)
	ch, cancel := m.Subscribe(1)
	cancel()
	cancel() // must not panic or double-close
	if _, open := <-ch; open {
		t.Fatal("channel not closed after cancel")
	}
}

func TestSlowSubscriberDrops(t *testing.T) {
	m, _ := hrMonitor(t)
	_, cancel := m.Subscribe(1) // never read
	defer cancel()
	tm := uint64(0)
	// Produce violations: fire then hire distinct employees quickly.
	for i := int64(0); i < 5; i++ {
		tm++
		if _, err := m.Apply(tm, ins("fire", i)); err != nil {
			t.Fatal(err)
		}
		tm++
		if _, err := m.Apply(tm, ins("hire", i)); err != nil {
			t.Fatal(err)
		}
	}
	if m.Dropped() == 0 {
		t.Fatal("expected drops from a full subscriber buffer")
	}
}

func TestConcurrentApplySerialized(t *testing.T) {
	m, _ := hrMonitor(t)
	// Concurrent commits with pre-assigned increasing timestamps: all
	// must succeed or fail only due to out-of-order arrival (which the
	// monitor must reject cleanly, never corrupt).
	var wg sync.WaitGroup
	errs := make([]error, 50)
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = m.Apply(uint64(i+1), storage.NewTransaction())
		}(i)
	}
	wg.Wait()
	okCount := 0
	for _, err := range errs {
		if err == nil {
			okCount++
		}
	}
	if okCount == 0 {
		t.Fatal("no commit succeeded")
	}
	if m.Len() != okCount {
		t.Fatalf("Len=%d, successes=%d", m.Len(), okCount)
	}
}

func TestSnapshotRestore(t *testing.T) {
	m, s := hrMonitor(t)
	if _, err := m.Apply(0, ins("fire", 7)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := Restore(s, &buf)
	if err != nil {
		t.Fatal(err)
	}
	vs, err := m2.Apply(100, ins("hire", 7))
	if err != nil || len(vs) != 1 {
		t.Fatalf("restored monitor: vs=%v err=%v", vs, err)
	}
	if m2.Stats().Nodes != 1 {
		t.Fatalf("stats = %+v", m2.Stats())
	}
}

func TestMonitorString(t *testing.T) {
	m, _ := hrMonitor(t)
	if m.String() == "" {
		t.Fatal("empty String")
	}
}

func TestRecentRingBuffer(t *testing.T) {
	m, _ := hrMonitor(t)
	if got := m.Recent(10); len(got) != 0 {
		t.Fatalf("fresh monitor Recent = %v", got)
	}
	tm := uint64(0)
	// Produce 150 violations to wrap the 128-slot ring.
	for i := int64(0); i < 150; i++ {
		tm++
		if _, err := m.Apply(tm, ins("fire", i)); err != nil {
			t.Fatal(err)
		}
		tm++
		if _, err := m.Apply(tm, ins("hire", i)); err != nil {
			t.Fatal(err)
		}
	}
	all := m.Recent(0)
	if len(all) != 128 {
		t.Fatalf("ring holds %d, want 128", len(all))
	}
	// Oldest-first ordering (several violations can share a commit
	// time, so non-decreasing).
	for i := 1; i < len(all); i++ {
		if all[i-1].Time > all[i].Time {
			t.Fatalf("Recent not ordered at %d", i)
		}
	}
	last5 := m.Recent(5)
	if len(last5) != 5 || last5[4].Time != all[127].Time {
		t.Fatalf("Recent(5) = %v", last5)
	}
}
