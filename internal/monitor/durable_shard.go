package monitor

import (
	"fmt"
	"sync"
	"time"

	"rtic/internal/obs"
	"rtic/internal/storage"
	"rtic/internal/wal"
)

// ShardedDurable is the durability manager for a sharded monitor: one
// write-ahead log per shard, each receiving that shard's slice of every
// accepted transaction. There are no checkpoints — sharded engines do
// not snapshot — so recovery replays the journals from the start.
//
// Crash-safety argument: every accepted commit appends exactly one
// record to every journal (empty sub-transactions included), all under
// the commit lock, so healthy journals hold the same record count and
// record j of every journal carries the same timestamp. A crash can
// tear that alignment — some journals got commit j, others did not —
// but only at the tail, because commits are serialized. Recovery
// therefore replays the common prefix (the minimum record count across
// journals), verifies the timestamps agree record by record, and
// truncates the longer journals back to the prefix, discarding at most
// the final partially journaled commit.
//
// Journaling failures follow the configured FailurePolicy. Under
// Degrade (the default) commits keep being acknowledged — as
// non-durable — while the backlog buffers each commit's per-shard
// records (with a mask of the shards still missing them, so a partially
// journaled commit is completed rather than duplicated) and a re-arm
// loop retries draining it. Sharded engines cannot snapshot, so there
// is no checkpoint-class re-arm: a journal that latched broken, or a
// backlog past its cap, leaves the manager degraded until restart.
type ShardedDurable struct {
	m      *Monitor
	logs   []*wal.Log // one per shard, index == shard id
	policy FailurePolicy
	halt   func(error)

	haltOnce   sync.Once
	backoffMin time.Duration
	backoffMax time.Duration
	backlogCap int

	mu              sync.Mutex
	mm              *obs.Metrics
	lastErr         error // latest append failure, nil when healthy
	replayed        int
	degraded        bool
	degradedSince   time.Time
	backlog         []shardPending
	backlogOverflow bool
	rearmAttempts   uint64
	rearms          uint64
	rearmStop       chan struct{}
	rearmDone       chan struct{}
}

// shardPending is one degraded-window commit: the encoded per-shard
// records plus the shards that still need theirs appended.
type shardPending struct {
	t        uint64
	payloads [][]byte // indexed by shard id
	need     []int    // shards missing the record, ascending
}

// NewShardedDurable builds the manager. logs must hold exactly one
// journal per shard of m, in shard order — record i of a commit goes to
// logs[i], so the order is load-bearing across restarts. Of the
// DurableOptions, WithDurableFS and WithLogFactory are ignored: sharded
// managers never rotate segments or checkpoint.
func NewShardedDurable(m *Monitor, logs []*wal.Log, opts ...DurableOption) (*ShardedDurable, error) {
	rtr := m.Router()
	if rtr == nil {
		return nil, fmt.Errorf("monitor: sharded durability requires a sharded monitor (use WithShards)")
	}
	if len(logs) != rtr.Shards() {
		return nil, fmt.Errorf("monitor: sharded durability wants %d journals (one per shard), got %d", rtr.Shards(), len(logs))
	}
	for i, l := range logs {
		if l == nil {
			return nil, fmt.Errorf("monitor: journal for shard %d is nil", i)
		}
	}
	o := defaultDurableOptions()
	for _, opt := range opts {
		opt(&o)
	}
	return &ShardedDurable{
		m: m, logs: logs, policy: o.policy, halt: o.halt,
		backoffMin: o.backoffMin, backoffMax: o.backoffMax, backlogCap: o.backlogCap,
	}, nil
}

// Recover replays the journals' common prefix into the monitor and
// returns how many commits were applied. Call it on the freshly built
// monitor, before Attach and before serving traffic. Journals torn by
// a crash — fewer records on some shards, or a torn tail frame the WAL
// layer already dropped — are truncated back to the common prefix so
// the next run appends from an aligned state.
//
// Replay routes each reassembled transaction through the monitor's own
// commit path, not through the individual shards, so the router's
// current partition plan decides placement afresh: a plan change
// between runs (new constraint set) re-routes old data correctly
// instead of resurrecting a stale layout.
func (d *ShardedDurable) Recover() (int, error) {
	d.captureMetrics()
	records := make([][]shardRecord, len(d.logs))
	for i, l := range d.logs {
		var recs []shardRecord
		if _, err := l.Replay(func(payload []byte) error {
			t, tx, err := wal.DecodeTx(payload)
			if err != nil {
				return err
			}
			recs = append(recs, shardRecord{t: t, tx: tx})
			return nil
		}); err != nil {
			return 0, fmt.Errorf("monitor: replaying shard %d journal: %w", i, err)
		}
		records[i] = recs
	}

	// The common prefix is the shortest journal; a longer journal's tail
	// belongs to commits that never reached every shard.
	k := len(records[0])
	for _, recs := range records[1:] {
		if len(recs) < k {
			k = len(recs)
		}
	}

	applied := 0
	for j := 0; j < k; j++ {
		t := records[0][j].t
		merged := storage.NewTransaction()
		for i, recs := range records {
			if recs[j].t != t {
				return applied, fmt.Errorf(
					"monitor: shard journals disagree at record %d: shard 0 has t=%d, shard %d has t=%d (journals swapped or mixed across runs?)",
					j, t, i, recs[j].t)
			}
			// Concatenating the shard slices in shard order is safe: ops on
			// the same tuple always hash to the same shard, so no
			// cross-shard reorder can change the merged transaction's
			// meaning.
			for _, op := range recs[j].tx.Ops() {
				if op.Insert {
					merged.Insert(op.Rel, op.Tuple)
				} else {
					merged.Delete(op.Rel, op.Tuple)
				}
			}
		}
		if d.m.Len() > 0 && t <= d.m.Now() {
			continue // already applied (double Recover, or pre-seeded monitor)
		}
		if _, err := d.m.Apply(t, merged); err != nil {
			return applied, fmt.Errorf("monitor: replaying sharded record at t=%d: %w", t, err)
		}
		applied++
	}

	// Drop the torn tails so every journal restarts aligned at k records.
	for i, l := range d.logs {
		if l.Records() > k {
			if err := l.Truncate(k); err != nil {
				return applied, fmt.Errorf("monitor: truncating shard %d journal to %d records: %w", i, k, err)
			}
		}
	}

	d.mu.Lock()
	d.replayed = applied
	mm := d.mm
	d.mu.Unlock()
	if mm != nil {
		mm.ReplayedRecords.Add(uint64(applied))
	}
	return applied, nil
}

func (d *ShardedDurable) captureMetrics() {
	if mm, _ := d.m.Observer().Parts(); mm != nil {
		d.mu.Lock()
		d.mm = mm
		d.mu.Unlock()
	}
}

// shardRecord is one journal record: a timestamp plus that shard's
// slice of the commit.
type shardRecord struct {
	t  uint64
	tx *storage.Transaction
}

// Attach starts journaling: every subsequently accepted transaction is
// split by the router's partition plan and appended to the per-shard
// journals under the commit lock, one record per shard per commit.
// Failures — including background-flusher fsync failures, surfaced
// through each log's failure handler at the point of failure — trigger
// the configured FailurePolicy.
func (d *ShardedDurable) Attach() {
	d.captureMetrics()
	for i, l := range d.logs {
		i := i
		l.SetFailureHandler(func(err error) {
			d.onFailure(fmt.Errorf("shard %d journal: %w", i, err))
		})
	}
	rtr := d.m.Router()
	d.m.SetJournal(func(t uint64, tx *storage.Transaction) {
		parts := rtr.Split(tx)
		d.mu.Lock()
		if d.degraded {
			d.pushBacklogLocked(t, parts, nil)
			d.mu.Unlock()
			return
		}
		d.mu.Unlock()
		var failed []int
		var firstErr error
		for i, part := range parts {
			if err := d.logs[i].AppendTx(t, part); err != nil {
				failed = append(failed, i)
				if firstErr == nil {
					firstErr = fmt.Errorf("shard %d journal: %w", i, err)
				}
			}
		}
		if firstErr == nil {
			return
		}
		d.onFailure(firstErr)
		d.mu.Lock()
		if d.degraded {
			// Only the failed shards still need this commit's record; the
			// others already hold it, and a duplicate would misalign the
			// journals.
			d.pushBacklogLocked(t, parts, failed)
			d.mu.Unlock()
			return
		}
		d.mu.Unlock()
	})
}

// pushBacklogLocked buffers one degraded-window commit (caller holds
// d.mu). need lists the shards missing their record; nil means all.
func (d *ShardedDurable) pushBacklogLocked(t uint64, parts []*storage.Transaction, need []int) {
	if d.backlogOverflow {
		return
	}
	if len(d.backlog) >= d.backlogCap {
		// The window can no longer be replayed, and without snapshots it
		// cannot be captured another way: degraded until restart.
		d.backlog = nil
		d.backlogOverflow = true
		if d.mm != nil {
			d.mm.JournalBacklog.Set(0)
		}
		return
	}
	payloads := make([][]byte, len(parts))
	for i, part := range parts {
		payloads[i] = wal.EncodeTx(t, part)
	}
	if need == nil {
		need = make([]int, len(parts))
		for i := range need {
			need[i] = i
		}
	}
	d.backlog = append(d.backlog, shardPending{t: t, payloads: payloads, need: need})
	if d.mm != nil {
		d.mm.JournalBacklog.Set(int64(len(d.backlog)))
	}
}

// onFailure reacts to a journaling failure per the configured policy.
func (d *ShardedDurable) onFailure(err error) {
	if d.policy == Halt {
		d.mu.Lock()
		d.lastErr = err
		d.mu.Unlock()
		if d.halt != nil {
			d.haltOnce.Do(func() { d.halt(err) })
		}
		return
	}
	d.degrade(err)
}

// degrade flips the manager into degraded mode (idempotent) and starts
// the re-arm loop.
func (d *ShardedDurable) degrade(err error) {
	d.mu.Lock()
	d.lastErr = err
	if d.degraded {
		d.mu.Unlock()
		return
	}
	d.degraded = true
	d.degradedSince = time.Now()
	stop := make(chan struct{})
	done := make(chan struct{})
	d.rearmStop, d.rearmDone = stop, done
	mm := d.mm
	d.mu.Unlock()
	if mm != nil {
		mm.DurabilityDegraded.Set(1)
	}
	go runRearmLoop(stop, done, d.backoffMin, d.backoffMax, d.tryRearm)
}

// tryRearm drains the backlog into the per-shard journals under the
// commit lock: for each buffered commit, the record goes to exactly the
// shards still missing it, restoring the aligned one-record-per-shard-
// per-commit invariant. All journals must be unlatched and the backlog
// within its cap; otherwise the manager stays degraded.
func (d *ShardedDurable) tryRearm() bool {
	d.mu.Lock()
	d.rearmAttempts++
	mm := d.mm
	d.mu.Unlock()
	if mm != nil {
		mm.RearmAttempts.Inc()
	}

	d.m.mu.Lock()
	defer d.m.mu.Unlock()

	d.mu.Lock()
	if !d.degraded {
		d.mu.Unlock()
		return true
	}
	if d.backlogOverflow {
		d.mu.Unlock()
		return false
	}
	backlog := d.backlog
	d.mu.Unlock()

	for _, l := range d.logs {
		if l.Err() != nil {
			return false
		}
	}

	// The commit lock freezes the backlog, so mutating records in place
	// is safe — a partial drain leaves each record knowing which shards
	// it still needs.
	drained := 0
drain:
	for ; drained < len(backlog); drained++ {
		rec := &backlog[drained]
		for len(rec.need) > 0 {
			s := rec.need[0]
			if err := d.logs[s].Append(rec.payloads[s]); err != nil {
				break drain
			}
			rec.need = rec.need[1:]
		}
	}
	ok := drained == len(backlog)
	if ok {
		for _, l := range d.logs {
			if l.Sync() != nil {
				ok = false
				break
			}
		}
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.backlog = d.backlog[drained:]
	if !ok {
		if d.mm != nil {
			d.mm.JournalBacklog.Set(int64(len(d.backlog)))
		}
		return false
	}
	d.degraded = false
	d.lastErr = nil
	d.degradedSince = time.Time{}
	d.backlog = nil
	d.rearms++
	d.rearmStop = nil
	if d.mm != nil {
		d.mm.DurabilityDegraded.Set(0)
		d.mm.JournalBacklog.Set(0)
		d.mm.Rearms.Inc()
	}
	return true
}

// Stop halts the re-arm loop if one is running; a manager stopped
// while degraded stays degraded.
func (d *ShardedDurable) Stop() {
	d.mu.Lock()
	stop, done := d.rearmStop, d.rearmDone
	d.rearmStop = nil
	d.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}

// Health reports the durability state for /healthz. WALBytes sums the
// per-shard journals; LastCheckpointAgeSeconds is always -1 (sharded
// monitors do not checkpoint).
func (d *ShardedDurable) Health() DurabilityHealth {
	d.mu.Lock()
	defer d.mu.Unlock()
	h := DurabilityHealth{
		Status:                   "ok",
		Policy:                   d.policy.String(),
		LastCheckpointAgeSeconds: -1,
		ReplayedRecords:          d.replayed,
		RearmAttempts:            d.rearmAttempts,
		Rearms:                   d.rearms,
		BacklogRecords:           len(d.backlog),
		BacklogOverflow:          d.backlogOverflow,
	}
	for _, l := range d.logs {
		h.WALBytes += l.Size()
	}
	if d.degraded {
		h.DegradedSeconds = time.Since(d.degradedSince).Seconds()
	}
	if d.lastErr != nil {
		h.Status = "degraded"
		h.LastError = d.lastErr.Error()
	}
	return h
}
