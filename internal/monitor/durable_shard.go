package monitor

import (
	"fmt"
	"sync"

	"rtic/internal/storage"
	"rtic/internal/wal"
)

// ShardedDurable is the durability manager for a sharded monitor: one
// write-ahead log per shard, each receiving that shard's slice of every
// accepted transaction. There are no checkpoints — sharded engines do
// not snapshot — so recovery replays the journals from the start.
//
// Crash-safety argument: every accepted commit appends exactly one
// record to every journal (empty sub-transactions included), all under
// the commit lock, so healthy journals hold the same record count and
// record j of every journal carries the same timestamp. A crash can
// tear that alignment — some journals got commit j, others did not —
// but only at the tail, because commits are serialized. Recovery
// therefore replays the common prefix (the minimum record count across
// journals), verifies the timestamps agree record by record, and
// truncates the longer journals back to the prefix, discarding at most
// the final partially journaled commit.
type ShardedDurable struct {
	m    *Monitor
	logs []*wal.Log // one per shard, index == shard id

	mu       sync.Mutex
	lastErr  error // latest append failure, nil when healthy
	replayed int
}

// NewShardedDurable builds the manager. logs must hold exactly one
// journal per shard of m, in shard order — record i of a commit goes to
// logs[i], so the order is load-bearing across restarts.
func NewShardedDurable(m *Monitor, logs []*wal.Log) (*ShardedDurable, error) {
	rtr := m.Router()
	if rtr == nil {
		return nil, fmt.Errorf("monitor: sharded durability requires a sharded monitor (use WithShards)")
	}
	if len(logs) != rtr.Shards() {
		return nil, fmt.Errorf("monitor: sharded durability wants %d journals (one per shard), got %d", rtr.Shards(), len(logs))
	}
	for i, l := range logs {
		if l == nil {
			return nil, fmt.Errorf("monitor: journal for shard %d is nil", i)
		}
	}
	return &ShardedDurable{m: m, logs: logs}, nil
}

// shardRecord is one journal record: a timestamp plus that shard's
// slice of the commit.
type shardRecord struct {
	t  uint64
	tx *storage.Transaction
}

// Recover replays the journals' common prefix into the monitor and
// returns how many commits were applied. Call it on the freshly built
// monitor, before Attach and before serving traffic. Journals torn by
// a crash — fewer records on some shards, or a torn tail frame the WAL
// layer already dropped — are truncated back to the common prefix so
// the next run appends from an aligned state.
//
// Replay routes each reassembled transaction through the monitor's own
// commit path, not through the individual shards, so the router's
// current partition plan decides placement afresh: a plan change
// between runs (new constraint set) re-routes old data correctly
// instead of resurrecting a stale layout.
func (d *ShardedDurable) Recover() (int, error) {
	records := make([][]shardRecord, len(d.logs))
	for i, l := range d.logs {
		var recs []shardRecord
		if _, err := l.Replay(func(payload []byte) error {
			t, tx, err := wal.DecodeTx(payload)
			if err != nil {
				return err
			}
			recs = append(recs, shardRecord{t: t, tx: tx})
			return nil
		}); err != nil {
			return 0, fmt.Errorf("monitor: replaying shard %d journal: %w", i, err)
		}
		records[i] = recs
	}

	// The common prefix is the shortest journal; a longer journal's tail
	// belongs to commits that never reached every shard.
	k := len(records[0])
	for _, recs := range records[1:] {
		if len(recs) < k {
			k = len(recs)
		}
	}

	applied := 0
	for j := 0; j < k; j++ {
		t := records[0][j].t
		merged := storage.NewTransaction()
		for i, recs := range records {
			if recs[j].t != t {
				return applied, fmt.Errorf(
					"monitor: shard journals disagree at record %d: shard 0 has t=%d, shard %d has t=%d (journals swapped or mixed across runs?)",
					j, t, i, recs[j].t)
			}
			// Concatenating the shard slices in shard order is safe: ops on
			// the same tuple always hash to the same shard, so no
			// cross-shard reorder can change the merged transaction's
			// meaning.
			for _, op := range recs[j].tx.Ops() {
				if op.Insert {
					merged.Insert(op.Rel, op.Tuple)
				} else {
					merged.Delete(op.Rel, op.Tuple)
				}
			}
		}
		if d.m.Len() > 0 && t <= d.m.Now() {
			continue // already applied (double Recover, or pre-seeded monitor)
		}
		if _, err := d.m.Apply(t, merged); err != nil {
			return applied, fmt.Errorf("monitor: replaying sharded record at t=%d: %w", t, err)
		}
		applied++
	}

	// Drop the torn tails so every journal restarts aligned at k records.
	for i, l := range d.logs {
		if l.Records() > k {
			if err := l.Truncate(k); err != nil {
				return applied, fmt.Errorf("monitor: truncating shard %d journal to %d records: %w", i, k, err)
			}
		}
	}

	d.mu.Lock()
	d.replayed = applied
	d.mu.Unlock()
	if mm, _ := d.m.Observer().Parts(); mm != nil {
		mm.ReplayedRecords.Add(uint64(applied))
	}
	return applied, nil
}

// Attach starts journaling: every subsequently accepted transaction is
// split by the router's partition plan and appended to the per-shard
// journals under the commit lock, one record per shard per commit.
// Append failures mark the manager degraded (see Health) — the
// in-memory commit has already happened and keeps serving.
func (d *ShardedDurable) Attach() {
	rtr := d.m.Router()
	d.m.SetJournal(func(t uint64, tx *storage.Transaction) {
		parts := rtr.Split(tx)
		for i, part := range parts {
			if err := d.logs[i].AppendTx(t, part); err != nil {
				d.noteError(fmt.Errorf("shard %d journal: %w", i, err))
			}
		}
	})
}

func (d *ShardedDurable) noteError(err error) {
	d.mu.Lock()
	d.lastErr = err
	d.mu.Unlock()
}

// Health reports the durability state for /healthz. WALBytes sums the
// per-shard journals; LastCheckpointAgeSeconds is always -1 (sharded
// monitors do not checkpoint).
func (d *ShardedDurable) Health() DurabilityHealth {
	d.mu.Lock()
	defer d.mu.Unlock()
	h := DurabilityHealth{Status: "ok", LastCheckpointAgeSeconds: -1, ReplayedRecords: d.replayed}
	for _, l := range d.logs {
		h.WALBytes += l.Size()
	}
	if d.lastErr != nil {
		h.Status = "degraded"
		h.LastError = d.lastErr.Error()
	}
	return h
}
