package monitor

import (
	"bufio"
	"net"
	"strings"
	"testing"
	"time"
)

func startServer(t *testing.T) (*Server, net.Addr) {
	t.Helper()
	m, _ := hrMonitor(t)
	srv := NewServer(m)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l) //nolint:errcheck — returns when the listener closes
	t.Cleanup(func() {
		l.Close()
		srv.Close()
	})
	return srv, l.Addr()
}

type client struct {
	conn net.Conn
	r    *bufio.Reader
}

func dial(t *testing.T, addr net.Addr) *client {
	t.Helper()
	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.SetDeadline(time.Now().Add(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return &client{conn: conn, r: bufio.NewReader(conn)}
}

func (c *client) send(t *testing.T, line string) {
	t.Helper()
	if _, err := c.conn.Write([]byte(line + "\n")); err != nil {
		t.Fatal(err)
	}
}

func (c *client) recv(t *testing.T) string {
	t.Helper()
	line, err := c.r.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	return strings.TrimSpace(line)
}

func TestServerProtocol(t *testing.T) {
	_, addr := startServer(t)
	c := dial(t, addr)

	c.send(t, "@0 +fire(7)")
	if got := c.recv(t); got != "ok 0" {
		t.Fatalf("reply = %q", got)
	}

	c.send(t, "@100 -fire(7) +hire(7)")
	if got := c.recv(t); !strings.HasPrefix(got, "violation no_quick_rehire") {
		t.Fatalf("reply = %q", got)
	}
	if got := c.recv(t); got != "ok 1" {
		t.Fatalf("reply = %q", got)
	}

	c.send(t, "stats")
	if got := c.recv(t); !strings.HasPrefix(got, "stats nodes=1") {
		t.Fatalf("reply = %q", got)
	}
}

func TestServerErrors(t *testing.T) {
	_, addr := startServer(t)
	c := dial(t, addr)

	c.send(t, "@5 +nosuch(1)")
	if got := c.recv(t); !strings.HasPrefix(got, "error") {
		t.Fatalf("reply = %q", got)
	}
	// Connection survives errors.
	c.send(t, "@5 +fire(1)")
	if got := c.recv(t); got != "ok 0" {
		t.Fatalf("reply = %q", got)
	}
	// Stale timestamp.
	c.send(t, "@5 +fire(2)")
	if got := c.recv(t); !strings.HasPrefix(got, "error") {
		t.Fatalf("reply = %q", got)
	}
	// Malformed line.
	c.send(t, "bogus")
	if got := c.recv(t); !strings.HasPrefix(got, "error") {
		t.Fatalf("reply = %q", got)
	}
}

func TestServerMultipleClients(t *testing.T) {
	_, addr := startServer(t)
	a := dial(t, addr)
	b := dial(t, addr)

	a.send(t, "@1 +fire(1)")
	if got := a.recv(t); got != "ok 0" {
		t.Fatalf("a reply = %q", got)
	}
	// Client b shares the same monitor and clock.
	b.send(t, "@2 +hire(1)")
	if got := b.recv(t); !strings.HasPrefix(got, "violation") {
		t.Fatalf("b reply = %q", got)
	}
	if got := b.recv(t); got != "ok 1" {
		t.Fatalf("b reply = %q", got)
	}
}

func TestServerQuitAndComments(t *testing.T) {
	_, addr := startServer(t)
	c := dial(t, addr)
	c.send(t, "-- a comment, no reply expected")
	c.send(t, "@1 +fire(9)")
	if got := c.recv(t); got != "ok 0" {
		t.Fatalf("reply = %q", got)
	}
	c.send(t, "quit")
	if _, err := c.r.ReadString('\n'); err == nil {
		t.Fatal("connection still open after quit")
	}
}

func TestServerRecentCommand(t *testing.T) {
	_, addr := startServer(t)
	c := dial(t, addr)
	c.send(t, "@0 +fire(7)")
	if got := c.recv(t); got != "ok 0" {
		t.Fatalf("reply = %q", got)
	}
	c.send(t, "@10 +hire(7)")
	if got := c.recv(t); !strings.HasPrefix(got, "violation") {
		t.Fatalf("reply = %q", got)
	}
	if got := c.recv(t); got != "ok 1" {
		t.Fatalf("reply = %q", got)
	}
	c.send(t, "recent")
	if got := c.recv(t); !strings.HasPrefix(got, "violation no_quick_rehire") {
		t.Fatalf("recent reply = %q", got)
	}
	if got := c.recv(t); got != "ok 1" {
		t.Fatalf("recent count = %q", got)
	}
	c.send(t, "recent 0")
	if got := c.recv(t); !strings.HasPrefix(got, "error") {
		t.Fatalf("recent 0 reply = %q", got)
	}
	c.send(t, "recent xyz")
	if got := c.recv(t); !strings.HasPrefix(got, "error") {
		t.Fatalf("recent xyz reply = %q", got)
	}
}
