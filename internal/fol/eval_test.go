package fol

import (
	"fmt"
	"strings"
	"testing"

	"rtic/internal/mtl"
	"rtic/internal/schema"
	"rtic/internal/storage"
	"rtic/internal/tuple"
	"rtic/internal/value"
)

// stubOracle answers temporal nodes from a fixed table keyed by the
// printed form of the node.
type stubOracle struct {
	enums map[string]*Bindings
	tests map[string]bool
}

func (o *stubOracle) Enumerate(f mtl.Formula) (*Bindings, error) {
	b, ok := o.enums[f.String()]
	if !ok {
		return nil, fmt.Errorf("stub: no enumeration for %q", f.String())
	}
	return b, nil
}

func (o *stubOracle) Test(f mtl.Formula, env Env) (bool, error) {
	key := f.String()
	if b, ok := o.enums[key]; ok {
		return b.Contains(env)
	}
	v, ok := o.tests[key]
	if !ok {
		return false, fmt.Errorf("stub: no test for %q", f.String())
	}
	return v, nil
}

func emptyOracle() *stubOracle {
	return &stubOracle{enums: map[string]*Bindings{}, tests: map[string]bool{}}
}

func buildState(t *testing.T) *storage.State {
	t.Helper()
	s := schema.NewBuilder().
		Relation("emp", 2). // emp(id, dept)
		Relation("mgr", 1).
		Relation("flag", 0).
		MustBuild()
	st := storage.NewState(s)
	tx := storage.NewTransaction().
		Insert("emp", tuple.Of(value.Int(1), value.Str("sales"))).
		Insert("emp", tuple.Of(value.Int(2), value.Str("sales"))).
		Insert("emp", tuple.Of(value.Int(3), value.Str("eng"))).
		Insert("mgr", tuple.Ints(2)).
		Insert("mgr", tuple.Ints(3))
	if err := st.Apply(tx); err != nil {
		t.Fatal(err)
	}
	return st
}

func evalStr(t *testing.T, st *storage.State, o Oracle, src string) *Bindings {
	t.Helper()
	f := mtl.Normalize(mtl.MustParse(src))
	b, err := NewEvaluator(st, o).Eval(f)
	if err != nil {
		t.Fatalf("Eval(%q): %v", src, err)
	}
	return b
}

func testStr(t *testing.T, st *storage.State, o Oracle, src string, env Env) bool {
	t.Helper()
	f := mtl.MustParse(src)
	ok, err := NewEvaluator(st, o).Test(f, env)
	if err != nil {
		t.Fatalf("Test(%q): %v", src, err)
	}
	return ok
}

func TestEvalAtom(t *testing.T) {
	st := buildState(t)
	b := evalStr(t, st, emptyOracle(), "emp(x, d)")
	if b.Len() != 3 {
		t.Fatalf("emp(x,d) -> %d rows", b.Len())
	}
	b = evalStr(t, st, emptyOracle(), "emp(x, 'sales')")
	if b.Len() != 2 {
		t.Fatalf("emp(x,'sales') -> %d rows", b.Len())
	}
	b = evalStr(t, st, emptyOracle(), "emp(1, d)")
	if b.Len() != 1 || !b.Rows()[0].Equal(tuple.Strs("sales")) {
		t.Fatalf("emp(1,d) -> %s", b)
	}
	// Repeated variable forces equality between columns.
	b = evalStr(t, st, emptyOracle(), "emp(x, x)")
	if b.Len() != 0 {
		t.Fatalf("emp(x,x) -> %d rows, want 0", b.Len())
	}
	// Nullary atom over empty relation is false.
	b = evalStr(t, st, emptyOracle(), "flag()")
	if b.Len() != 0 {
		t.Fatal("flag() should be empty")
	}
}

func TestEvalConjunction(t *testing.T) {
	st := buildState(t)
	b := evalStr(t, st, emptyOracle(), "emp(x, d) and mgr(x)")
	if b.Len() != 2 {
		t.Fatalf("join -> %d rows", b.Len())
	}
	b = evalStr(t, st, emptyOracle(), "emp(x, d) and mgr(x) and d = 'sales'")
	if b.Len() != 1 {
		t.Fatalf("join+select -> %d rows", b.Len())
	}
	// Negation as filter.
	b = evalStr(t, st, emptyOracle(), "emp(x, d) and not mgr(x)")
	if b.Len() != 1 {
		t.Fatalf("antijoin -> %d rows", b.Len())
	}
	// Comparison filter.
	b = evalStr(t, st, emptyOracle(), "emp(x, d) and x >= 2")
	if b.Len() != 2 {
		t.Fatalf("x>=2 -> %d rows", b.Len())
	}
	// Variable equality as filter.
	b = evalStr(t, st, emptyOracle(), "emp(x, d) and mgr(y) and x = y")
	if b.Len() != 2 {
		t.Fatalf("x=y filter -> %d rows", b.Len())
	}
}

func TestEvalDisjunction(t *testing.T) {
	st := buildState(t)
	b := evalStr(t, st, emptyOracle(), "mgr(x) or emp(x, 'eng')")
	if b.Len() != 2 { // ids 2 and 3; 3 appears in both
		t.Fatalf("or -> %d rows", b.Len())
	}
}

func TestEvalExists(t *testing.T) {
	st := buildState(t)
	b := evalStr(t, st, emptyOracle(), "exists x: emp(x, d)")
	if b.Len() != 2 { // sales, eng
		t.Fatalf("exists -> %d rows", b.Len())
	}
	if len(b.Vars()) != 1 || b.Vars()[0] != "d" {
		t.Fatalf("exists vars = %v", b.Vars())
	}
}

func TestEvalEqualityBinding(t *testing.T) {
	st := buildState(t)
	b := evalStr(t, st, emptyOracle(), "x = 2 and mgr(x)")
	if b.Len() != 1 {
		t.Fatalf("x=2 binding -> %d rows", b.Len())
	}
	b = evalStr(t, st, emptyOracle(), "2 = x and mgr(x)")
	if b.Len() != 1 {
		t.Fatalf("2=x binding -> %d rows", b.Len())
	}
}

func TestEvalTruth(t *testing.T) {
	st := buildState(t)
	if b := evalStr(t, st, emptyOracle(), "true"); b.Len() != 1 {
		t.Fatal("true not unit")
	}
	if b := evalStr(t, st, emptyOracle(), "false"); b.Len() != 0 {
		t.Fatal("false not empty")
	}
	if b := evalStr(t, st, emptyOracle(), "3 < 5"); b.Len() != 1 {
		t.Fatal("const comparison true not unit")
	}
	if b := evalStr(t, st, emptyOracle(), "5 < 3"); b.Len() != 0 {
		t.Fatal("const comparison false not empty")
	}
}

func TestEvalTemporalThroughOracle(t *testing.T) {
	st := buildState(t)
	o := emptyOracle()
	fired := NewBindings([]string{"x"})
	_ = fired.Add(Env{"x": value.Int(1)})
	o.enums["once[0,365] fired(x)"] = fired
	b := evalStr(t, st, o, "emp(x, d) and once[0,365] fired(x)")
	if b.Len() != 1 {
		t.Fatalf("temporal join -> %d rows", b.Len())
	}
	// Negated temporal as filter (membership test against enumeration).
	b = evalStr(t, st, o, "emp(x, d) and not once[0,365] fired(x)")
	if b.Len() != 2 {
		t.Fatalf("negated temporal -> %d rows", b.Len())
	}
}

func TestEvalErrors(t *testing.T) {
	st := buildState(t)
	ev := NewEvaluator(st, emptyOracle())
	if _, err := ev.Eval(mtl.MustParse("not emp(x, d)")); err == nil {
		t.Fatal("bare negation enumerated")
	}
	if _, err := ev.Eval(mtl.MustParse("nosuch(x)")); err == nil {
		t.Fatal("unknown relation enumerated")
	}
	if _, err := ev.Eval(mtl.MustParse("emp(x)")); err == nil {
		t.Fatal("arity mismatch enumerated")
	}
	if _, err := ev.Eval(mtl.MustParse("x < 5")); err == nil {
		t.Fatal("bare comparison enumerated")
	}
	if _, err := ev.Eval(mtl.MustParse("emp(x, d) and y < 5")); err == nil {
		t.Fatal("unbound filter variable accepted")
	}
	if _, err := ev.Eval(mtl.MustParse("p(x) -> q(x)")); err == nil {
		t.Fatal("sugar node enumerated")
	}
}

func TestTestBasic(t *testing.T) {
	st := buildState(t)
	o := emptyOracle()
	env := Env{"x": value.Int(2), "d": value.Str("sales")}
	if !testStr(t, st, o, "emp(x, d)", env) {
		t.Fatal("emp(2,'sales') should hold")
	}
	if testStr(t, st, o, "emp(x, 'eng')", env) {
		t.Fatal("emp(2,'eng') should not hold")
	}
	if !testStr(t, st, o, "mgr(x) and x >= 2", env) {
		t.Fatal("conjunction should hold")
	}
	if !testStr(t, st, o, "not emp(x, 'eng')", env) {
		t.Fatal("negation should hold")
	}
	if !testStr(t, st, o, "emp(x, 'eng') or mgr(x)", env) {
		t.Fatal("disjunction should hold")
	}
	if !testStr(t, st, o, "emp(x, 'eng') -> false", env) {
		t.Fatal("implication with false antecedent should hold")
	}
	if !testStr(t, st, o, "mgr(x) <-> emp(x, d)", env) {
		t.Fatal("iff of two truths should hold")
	}
	if testStr(t, st, o, "false", env) {
		t.Fatal("false held")
	}
}

func TestTestQuantifiers(t *testing.T) {
	st := buildState(t)
	o := emptyOracle()
	env := Env{}
	if !testStr(t, st, o, "exists x: mgr(x)", env) {
		t.Fatal("exists over nonempty mgr failed")
	}
	if testStr(t, st, o, "exists x: emp(x, x)", env) {
		t.Fatal("exists emp(x,x) should fail")
	}
	if !testStr(t, st, o, "forall x: mgr(x) -> exists d: emp(x, d)", env) {
		t.Fatal("every manager is an employee")
	}
	if testStr(t, st, o, "forall x: mgr(x)", env) {
		t.Fatal("not everything is a manager")
	}
	// Quantifier sees values from the env too.
	if !testStr(t, st, o, "exists y: y = x", Env{"x": value.Int(777)}) {
		t.Fatal("quantifier domain must include env values")
	}
	// And constants from the formula.
	if !testStr(t, st, o, "exists y: y = 123456", Env{}) {
		t.Fatal("quantifier domain must include formula constants")
	}
}

func TestTestTemporalDelegation(t *testing.T) {
	st := buildState(t)
	o := emptyOracle()
	o.tests["once p()"] = true
	o.tests["always q()"] = false
	if !testStr(t, st, o, "once p()", Env{}) {
		t.Fatal("oracle test not consulted")
	}
	if testStr(t, st, o, "always q()", Env{}) {
		t.Fatal("oracle Always test not consulted")
	}
	// The env passed to the oracle is restricted to the node's vars.
	probe := &probeOracle{}
	f := mtl.MustParse("once fired(x)")
	_, err := NewEvaluator(st, probe).Test(f, Env{"x": value.Int(1), "junk": value.Int(2)})
	if err != nil {
		t.Fatal(err)
	}
	if len(probe.lastEnv) != 1 {
		t.Fatalf("oracle saw env %v, want only x", probe.lastEnv)
	}
}

type probeOracle struct{ lastEnv Env }

func (p *probeOracle) Enumerate(mtl.Formula) (*Bindings, error) { return Unit(), nil }
func (p *probeOracle) Test(f mtl.Formula, env Env) (bool, error) {
	p.lastEnv = env.Clone()
	return true, nil
}

func TestTestErrors(t *testing.T) {
	st := buildState(t)
	ev := NewEvaluator(st, emptyOracle())
	if _, err := ev.Test(mtl.MustParse("emp(x, d)"), Env{}); err == nil {
		t.Fatal("unbound variable accepted in test")
	}
	if _, err := ev.Test(mtl.MustParse("nosuch()"), Env{}); err == nil {
		t.Fatal("unknown relation accepted in test")
	}
	if _, err := ev.Test(mtl.MustParse("once nosuch(x)"), Env{}); err == nil {
		t.Fatal("temporal test with missing var accepted")
	}
}

func TestCheckSchema(t *testing.T) {
	s := schema.NewBuilder().Relation("p", 1).MustBuild()
	if err := CheckSchema(mtl.MustParse("p(x) and once p(y)"), s); err != nil {
		t.Fatal(err)
	}
	err := CheckSchema(mtl.MustParse("q(x)"), s)
	if err == nil || !strings.Contains(err.Error(), "unknown relation") {
		t.Fatalf("unknown relation: %v", err)
	}
	err = CheckSchema(mtl.MustParse("p(x, y)"), s)
	if err == nil || !strings.Contains(err.Error(), "arity") {
		t.Fatalf("arity mismatch: %v", err)
	}
}
