package fol

import (
	"fmt"

	"rtic/internal/mtl"
	"rtic/internal/schema"
)

// CheckSchema verifies that every atom of f names a schema relation with
// the right arity, so that evaluation errors surface at constraint
// installation time rather than mid-history.
func CheckSchema(f mtl.Formula, s *schema.Schema) error {
	var firstErr error
	mtl.Walk(f, func(g mtl.Formula) {
		if firstErr != nil {
			return
		}
		a, ok := g.(*mtl.Atom)
		if !ok {
			return
		}
		arity, err := s.Arity(a.Rel)
		if err != nil {
			firstErr = fmt.Errorf("fol: %w", err)
			return
		}
		if arity != len(a.Args) {
			firstErr = fmt.Errorf("fol: atom %q has %d arguments, relation %s has arity %d",
				a.String(), len(a.Args), a.Rel, arity)
		}
	})
	return firstErr
}
