package fol

import (
	"fmt"

	"rtic/internal/mtl"
	"rtic/internal/relation"
	"rtic/internal/storage"
	"rtic/internal/tuple"
	"rtic/internal/value"
)

// Oracle answers temporal subformulas at the evaluator's current point
// in the history. Eval and Test pass temporal nodes through unchanged,
// so implementations may key their state on node identity.
type Oracle interface {
	// Enumerate returns the satisfying bindings of a temporal node
	// (Prev, Once or Since) over the node's free variables.
	Enumerate(f mtl.Formula) (*Bindings, error)
	// Test decides a temporal node (Prev, Once, Since — and Always for
	// oracles that serve non-normalized formulas) under a full binding
	// of its free variables.
	Test(f mtl.Formula, env Env) (bool, error)
}

// Evaluator evaluates kernel formulas over one database state, with
// temporal nodes delegated to the oracle. It caches the state's active
// domain across calls.
//
// An Evaluator is not safe for concurrent use: the domain cache is
// written lazily and the atom scan/test paths reuse per-evaluator
// scratch buffers (row and environment) so the fallback path allocates
// per result set, not per tuple. Concurrent callers over the same state
// create one Evaluator per goroutine; NewEvaluatorShared lets them share
// a single active-domain computation so parallelism does not multiply
// its cost.
type Evaluator struct {
	st     *storage.State
	oracle Oracle
	domFn  func() []value.Value // optional shared domain source
	domain []value.Value
	hasDom bool
	// rowBuf and envBuf are reusable scratch buffers for the tree-walk
	// fallback path (testAtom rows, evalAtom environments); legal because
	// an Evaluator is single-goroutine by contract.
	rowBuf tuple.Tuple
	envBuf Env
	// free recycles intermediate binding sets (atom scans, join inputs)
	// across Eval calls, keyed by arity. Only evaluator-built sets enter
	// the pool — never oracle-owned answers, which outlive the call.
	free map[int][]*Bindings
}

// getBindings returns a pooled binding set over vars, or a fresh one.
func (e *Evaluator) getBindings(vars []string) *Bindings {
	vs := dedupSorted(vars)
	if l := e.free[len(vs)]; len(l) > 0 {
		b := l[len(l)-1]
		e.free[len(vs)] = l[:len(l)-1]
		b.vars = vs
		b.rel.Clear()
		return b
	}
	return &Bindings{vars: vs, rel: relation.New(len(vs))}
}

// recycle returns an evaluator-built intermediate to the pool. Callers
// guarantee nothing retains b.
func (e *Evaluator) recycle(b *Bindings) {
	if b == nil {
		return
	}
	if e.free == nil {
		e.free = make(map[int][]*Bindings)
	}
	n := b.rel.Arity()
	if len(e.free[n]) < 16 {
		e.free[n] = append(e.free[n], b)
	}
}

// oracleOwned reports whether Eval(f) hands back a binding set owned by
// the oracle (a temporal node's maintained answer) rather than one this
// evaluator built — such sets must never be recycled or mutated.
func oracleOwned(f mtl.Formula) bool {
	switch f.(type) {
	case *mtl.Prev, *mtl.Once, *mtl.Since:
		return true
	}
	return false
}

// recycleIfOwned recycles Eval(f)'s result when this evaluator built it.
func (e *Evaluator) recycleIfOwned(f mtl.Formula, b *Bindings) {
	if !oracleOwned(f) {
		e.recycle(b)
	}
}

// NewEvaluator returns an evaluator for st with the given oracle.
func NewEvaluator(st *storage.State, oracle Oracle) *Evaluator {
	return &Evaluator{st: st, oracle: oracle}
}

// NewEvaluatorShared returns an evaluator for st whose active domain is
// read from domFn instead of being computed from the state — the hook
// per-goroutine evaluators use to share one (sync.Once-guarded) domain
// computation. domFn must return an equivalent of st.ActiveDomain() and
// must itself be safe for concurrent use.
func NewEvaluatorShared(st *storage.State, oracle Oracle, domFn func() []value.Value) *Evaluator {
	return &Evaluator{st: st, oracle: oracle, domFn: domFn}
}

func (e *Evaluator) activeDomain() []value.Value {
	if !e.hasDom {
		if e.domFn != nil {
			e.domain = e.domFn()
		} else {
			e.domain = e.st.ActiveDomain()
		}
		e.hasDom = true
	}
	return e.domain
}

// Eval enumerates the satisfying bindings of the enumerable kernel
// formula f over its free variables. Formulas outside the safe fragment
// produce an error (the static mtl.CheckSafe rejects them up front; this
// is the dynamic backstop).
func (e *Evaluator) Eval(f mtl.Formula) (*Bindings, error) {
	switch n := f.(type) {
	case mtl.Truth:
		if n.Bool {
			return Unit(), nil
		}
		return NewBindings(nil), nil
	case *mtl.Atom:
		return e.evalAtom(n)
	case *mtl.Cmp:
		return e.evalCmp(n)
	case *mtl.And:
		return e.evalAnd(f)
	case *mtl.Or:
		l, err := e.Eval(n.L)
		if err != nil {
			return nil, err
		}
		r, err := e.Eval(n.R)
		if err != nil {
			return nil, err
		}
		u, err := Union(l, r)
		if err != nil {
			return nil, err
		}
		e.recycleIfOwned(n.L, l)
		e.recycleIfOwned(n.R, r)
		return u, nil
	case *mtl.Exists:
		inner, err := e.Eval(n.F)
		if err != nil {
			return nil, err
		}
		out, err := inner.Project(mtl.FreeVars(f))
		if err != nil {
			return nil, err
		}
		e.recycleIfOwned(n.F, inner)
		return out, nil
	case *mtl.Prev, *mtl.Once, *mtl.Since:
		return e.oracle.Enumerate(f)
	case *mtl.Not:
		return nil, fmt.Errorf("fol: cannot enumerate negation %q", f.String())
	default:
		return nil, fmt.Errorf("fol: cannot enumerate node %T (%q); normalize first", f, f.String())
	}
}

func (e *Evaluator) evalAtom(a *mtl.Atom) (*Bindings, error) {
	rel, err := e.st.Relation(a.Rel)
	if err != nil {
		return nil, err
	}
	if rel.Arity() != len(a.Args) {
		return nil, fmt.Errorf("fol: atom %q has %d arguments, relation has arity %d",
			a.Rel, len(a.Args), rel.Arity())
	}
	out := e.getBindings(mtl.FreeVars(a))
	if e.envBuf == nil {
		e.envBuf = make(Env, 8)
	}
	env := e.envBuf
	for k := range env {
		delete(env, k)
	}
	var insertErr error
	rel.Each(func(t tuple.Tuple) bool {
		for k := range env {
			delete(env, k)
		}
		ok := true
		for i, arg := range a.Args {
			switch term := arg.(type) {
			case mtl.Const:
				if !t[i].Equal(term.Val) {
					ok = false
				}
			case mtl.Var:
				if prev, seen := env[term.Name]; seen {
					if !prev.Equal(t[i]) {
						ok = false
					}
				} else {
					env[term.Name] = t[i]
				}
			}
			if !ok {
				break
			}
		}
		if ok {
			if err := out.Add(env); err != nil {
				insertErr = err
				return false
			}
		}
		return true
	})
	if insertErr != nil {
		return nil, insertErr
	}
	return out, nil
}

func (e *Evaluator) evalCmp(c *mtl.Cmp) (*Bindings, error) {
	lc, lIsConst := c.L.(mtl.Const)
	rc, rIsConst := c.R.(mtl.Const)
	switch {
	case lIsConst && rIsConst:
		if c.Op.Apply(lc.Val, rc.Val) {
			return Unit(), nil
		}
		return NewBindings(nil), nil
	case c.Op == mtl.OpEq && !lIsConst && rIsConst:
		v := c.L.(mtl.Var)
		out := NewBindings([]string{v.Name})
		if err := out.Add(Env{v.Name: rc.Val}); err != nil {
			return nil, err
		}
		return out, nil
	case c.Op == mtl.OpEq && lIsConst && !rIsConst:
		v := c.R.(mtl.Var)
		out := NewBindings([]string{v.Name})
		if err := out.Add(Env{v.Name: lc.Val}); err != nil {
			return nil, err
		}
		return out, nil
	default:
		return nil, fmt.Errorf("fol: comparison %q cannot enumerate bindings; use it as a filter", c.String())
	}
}

func (e *Evaluator) evalAnd(f mtl.Formula) (*Bindings, error) {
	conjuncts := mtl.Conjuncts(f)
	// Greedy safe ordering: join every enumerable conjunct first, then
	// apply the remaining conjuncts as filters over the bound variables.
	acc := Unit()
	var filters []mtl.Formula
	for _, c := range conjuncts {
		b, err := e.Eval(c)
		if err != nil {
			filters = append(filters, c)
			continue
		}
		joined, err := Join(acc, b)
		if err != nil {
			return nil, err
		}
		e.recycle(acc)
		e.recycleIfOwned(c, b)
		acc = joined
	}
	for _, c := range filters {
		for _, v := range mtl.FreeVars(c) {
			if indexOf(acc.Vars(), v) < 0 {
				return nil, fmt.Errorf("fol: variable %q of filter conjunct %q is not bound by any enumerable conjunct", v, c.String())
			}
		}
		// A negated enumerable conjunct is applied set-at-a-time as an
		// antijoin instead of per-row tests.
		if not, ok := c.(*mtl.Not); ok {
			if inner, err := e.Eval(not.F); err == nil {
				next, err := AntiJoin(acc, inner)
				if err != nil {
					return nil, err
				}
				e.recycle(acc)
				e.recycleIfOwned(not.F, inner)
				acc = next
				continue
			}
		}
		next, err := acc.Filter(func(env Env) (bool, error) {
			return e.Test(c, env)
		})
		if err != nil {
			return nil, err
		}
		e.recycle(acc)
		acc = next
	}
	return acc, nil
}

// Test decides formula f under env, which must bind every free variable
// of f. Unlike Eval, Test handles the full language including the sugar
// connectives, so the naive checker can decide non-normalized formulas.
func (e *Evaluator) Test(f mtl.Formula, env Env) (bool, error) {
	switch n := f.(type) {
	case mtl.Truth:
		return n.Bool, nil
	case *mtl.Atom:
		return e.testAtom(n, env)
	case *mtl.Cmp:
		l, err := resolve(n.L, env)
		if err != nil {
			return false, err
		}
		r, err := resolve(n.R, env)
		if err != nil {
			return false, err
		}
		return n.Op.Apply(l, r), nil
	case *mtl.Not:
		ok, err := e.Test(n.F, env)
		return !ok, err
	case *mtl.And:
		ok, err := e.Test(n.L, env)
		if err != nil || !ok {
			return false, err
		}
		return e.Test(n.R, env)
	case *mtl.Or:
		ok, err := e.Test(n.L, env)
		if err != nil || ok {
			return ok, err
		}
		return e.Test(n.R, env)
	case *mtl.Implies:
		ok, err := e.Test(n.L, env)
		if err != nil {
			return false, err
		}
		if !ok {
			return true, nil
		}
		return e.Test(n.R, env)
	case *mtl.Iff:
		l, err := e.Test(n.L, env)
		if err != nil {
			return false, err
		}
		r, err := e.Test(n.R, env)
		if err != nil {
			return false, err
		}
		return l == r, nil
	case *mtl.Exists:
		return e.testQuantifier(n.Vars, n.F, env, false)
	case *mtl.Forall:
		return e.testQuantifier(n.Vars, n.F, env, true)
	case *mtl.Prev, *mtl.Once, *mtl.Since, *mtl.Always, *mtl.LeadsTo:
		restricted := make(Env, 4)
		for _, v := range mtl.FreeVars(f) {
			val, ok := env[v]
			if !ok {
				return false, fmt.Errorf("fol: test of %q misses variable %q", f.String(), v)
			}
			restricted[v] = val
		}
		return e.oracle.Test(f, restricted)
	default:
		return false, fmt.Errorf("fol: cannot test node %T (%q)", f, f.String())
	}
}

func (e *Evaluator) testAtom(a *mtl.Atom, env Env) (bool, error) {
	rel, err := e.st.Relation(a.Rel)
	if err != nil {
		return false, err
	}
	if rel.Arity() != len(a.Args) {
		return false, fmt.Errorf("fol: atom %q has %d arguments, relation has arity %d",
			a.Rel, len(a.Args), rel.Arity())
	}
	if cap(e.rowBuf) < len(a.Args) {
		e.rowBuf = make(tuple.Tuple, len(a.Args))
	}
	row := e.rowBuf[:len(a.Args)]
	for i, arg := range a.Args {
		v, err := resolve(arg, env)
		if err != nil {
			return false, err
		}
		row[i] = v
	}
	return rel.Contains(row), nil
}

// testQuantifier decides ∃/∀ vars: f by iterating the active domain of
// the current state extended with the subformula's constants and the
// values already bound in env (active-domain semantics).
func (e *Evaluator) testQuantifier(vars []string, f mtl.Formula, env Env, forall bool) (bool, error) {
	domain := e.quantifierDomain(f, env)
	inner := env.Clone()
	var rec func(i int) (bool, error)
	rec = func(i int) (bool, error) {
		if i == len(vars) {
			return e.Test(f, inner)
		}
		for _, v := range domain {
			inner[vars[i]] = v
			ok, err := rec(i + 1)
			if err != nil {
				return false, err
			}
			if ok != forall {
				// ∃ short-circuits on true, ∀ on false.
				return !forall, nil
			}
		}
		return forall, nil
	}
	if len(domain) == 0 {
		// Empty domain: ∃ is false, ∀ is vacuously true.
		return forall, nil
	}
	return rec(0)
}

func (e *Evaluator) quantifierDomain(f mtl.Formula, env Env) []value.Value {
	seen := make(map[string]value.Value)
	for _, v := range e.activeDomain() {
		seen[v.Key()] = v
	}
	for _, v := range mtl.Constants(f) {
		seen[v.Key()] = v
	}
	for _, v := range env {
		seen[v.Key()] = v
	}
	out := make([]value.Value, 0, len(seen))
	for _, v := range seen {
		out = append(out, v)
	}
	return out
}

func resolve(t mtl.Term, env Env) (value.Value, error) {
	switch term := t.(type) {
	case mtl.Const:
		return term.Val, nil
	case mtl.Var:
		v, ok := env[term.Name]
		if !ok {
			return value.Value{}, fmt.Errorf("fol: unbound variable %q", term.Name)
		}
		return v, nil
	default:
		return value.Value{}, fmt.Errorf("fol: unknown term %T", t)
	}
}
