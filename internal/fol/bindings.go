// Package fol evaluates the first-order skeleton of kernel formulas over
// a single database state. Temporal subformulas are resolved through a
// pluggable Oracle, so the same evaluator serves both the naive
// full-history checker and the incremental bounded-history checker.
//
// Two evaluation modes mirror the safety analysis in package mtl:
//
//   - Eval enumerates the finite set of satisfying variable bindings of
//     an enumerable (range-restricted) formula, bottom-up: atoms scan
//     relations, conjunctions join, disjunctions union, negations and
//     comparisons filter;
//   - Test decides an arbitrary kernel formula under a full binding of
//     its free variables; quantifiers range over the state's active
//     domain extended with the formula's constants and the binding's
//     values (active-domain semantics, applied uniformly by every
//     checker in this repository).
package fol

import (
	"fmt"
	"sort"

	"rtic/internal/relation"
	"rtic/internal/tuple"
	"rtic/internal/value"
)

// Env assigns values to variable names.
type Env map[string]value.Value

// Clone returns an independent copy of the environment.
func (e Env) Clone() Env {
	c := make(Env, len(e))
	for k, v := range e {
		c[k] = v
	}
	return c
}

// Bindings is a set of assignments to a fixed, sorted list of variables,
// stored as a relation whose columns follow that order.
type Bindings struct {
	vars []string
	rel  *relation.Relation
	// scratch is the reusable row buffer of Add/Contains; the relation
	// clones on insert, so reuse is safe.
	scratch tuple.Tuple
}

// NewBindings returns an empty binding set over vars (deduplicated and
// sorted).
func NewBindings(vars []string) *Bindings {
	vs := dedupSorted(vars)
	return &Bindings{vars: vs, rel: relation.New(len(vs))}
}

// Unit returns the binding set over no variables containing the empty
// binding — the identity of Join and the encoding of "true".
func Unit() *Bindings {
	b := NewBindings(nil)
	b.rel.MustInsert(tuple.Of())
	return b
}

// Vars returns the sorted variable list. The slice must not be mutated.
func (b *Bindings) Vars() []string { return b.vars }

// Len reports the number of bindings.
func (b *Bindings) Len() int { return b.rel.Len() }

// Empty reports whether the set holds no bindings.
func (b *Bindings) Empty() bool { return b.rel.Len() == 0 }

// Add inserts the binding env restricted to b's variables; every
// variable of b must be present in env.
func (b *Bindings) Add(env Env) error {
	row, err := b.scratchRow(env)
	if err != nil {
		return err
	}
	_, err = b.rel.Insert(row)
	return err
}

// scratchRow fills the reusable row buffer from env.
//
//rtic:noalloc
func (b *Bindings) scratchRow(env Env) (tuple.Tuple, error) {
	if cap(b.scratch) < len(b.vars) {
		b.scratch = make(tuple.Tuple, len(b.vars)) //rtic:allocok scratch warm-up; amortized to zero after the first row
	}
	row := b.scratch[:len(b.vars)]
	for i, v := range b.vars {
		val, ok := env[v]
		if !ok {
			return nil, fmt.Errorf("fol: binding misses variable %q", v) //rtic:allocok cold path: env/vars mismatch is a programming error
		}
		row[i] = val
	}
	return row, nil
}

// AddRow inserts a tuple aligned with b's variable order.
func (b *Bindings) AddRow(row tuple.Tuple) error {
	_, err := b.rel.Insert(row)
	return err
}

// Each calls f with an Env view of every binding, in unspecified order;
// iteration stops early when f returns false. The Env passed to f is
// reused across calls; clone it to retain it.
func (b *Bindings) Each(f func(Env) bool) {
	env := make(Env, len(b.vars))
	b.rel.Each(func(t tuple.Tuple) bool {
		for i, v := range b.vars {
			env[v] = t[i]
		}
		return f(env)
	})
}

// Rows returns the underlying tuples, sorted, aligned with Vars().
func (b *Bindings) Rows() []tuple.Tuple { return b.rel.Tuples() }

// EachRow calls f with every underlying tuple (aligned with Vars()) in
// unspecified order; iteration stops early when f returns false.
//
//rtic:noalloc
func (b *Bindings) EachRow(f func(tuple.Tuple) bool) { b.rel.Each(f) }

// ContainsRow reports whether a tuple aligned with Vars() is present.
func (b *Bindings) ContainsRow(row tuple.Tuple) bool { return b.rel.Contains(row) }

// Size estimates the in-memory footprint in bytes, for space accounting.
func (b *Bindings) Size() int {
	n := 24
	for _, v := range b.vars {
		n += len(v) + 16
	}
	return n + b.rel.Size()
}

// Contains reports whether env (restricted to b's variables) is present.
// Unlike Add it builds a fresh row: lookups run concurrently (shared
// auxiliary answers), so they must not touch the scratch buffer.
func (b *Bindings) Contains(env Env) (bool, error) {
	row := make(tuple.Tuple, len(b.vars))
	for i, v := range b.vars {
		val, ok := env[v]
		if !ok {
			return false, fmt.Errorf("fol: binding misses variable %q", v)
		}
		row[i] = val
	}
	return b.rel.Contains(row), nil
}

// ContainsKeyBytes reports whether the binding row whose Key() encoding
// is key is present — the allocation-free probe of plan execution.
//
//rtic:noalloc
func (b *Bindings) ContainsKeyBytes(key []byte) bool {
	return b.rel.ContainsKeyBytes(key)
}

// ContainsKey reports whether the binding row with the given Key()
// string is present.
//
//rtic:noalloc
func (b *Bindings) ContainsKey(key string) bool {
	_, ok := b.rel.GetKey(key)
	return ok
}

// RemoveKey deletes the binding row with the given Key() string,
// reporting whether it was present.
func (b *Bindings) RemoveKey(key string) bool { return b.rel.DeleteKey(key) }

// Clone returns an independent copy of the binding set.
func (b *Bindings) Clone() *Bindings {
	return &Bindings{vars: b.vars, rel: b.rel.Clone()}
}

// Equal reports whether a and o hold the same bindings over the same
// variables.
func (b *Bindings) Equal(o *Bindings) bool {
	return sameStrings(b.vars, o.vars) && b.rel.Equal(o.rel)
}

// Project returns the bindings restricted to vars (which must be a
// subset of b's variables), deduplicated.
func (b *Bindings) Project(vars []string) (*Bindings, error) {
	vs := dedupSorted(vars)
	positions := make([]int, len(vs))
	for i, v := range vs {
		p := indexOf(b.vars, v)
		if p < 0 {
			return nil, fmt.Errorf("fol: projection variable %q not present in %v", v, b.vars)
		}
		positions[i] = p
	}
	out := NewBindings(vs)
	var err error
	b.rel.Each(func(t tuple.Tuple) bool {
		if _, e := out.rel.Insert(t.Project(positions)); e != nil {
			err = e
			return false
		}
		return true
	})
	return out, err
}

// Filter returns the bindings satisfying pred; pred errors abort.
func (b *Bindings) Filter(pred func(Env) (bool, error)) (*Bindings, error) {
	out := NewBindings(b.vars)
	var err error
	b.Each(func(env Env) bool {
		ok, e := pred(env)
		if e != nil {
			err = e
			return false
		}
		if ok {
			if e := out.Add(env); e != nil {
				err = e
				return false
			}
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Union returns the set union; both sides must range over the same
// variables.
func Union(a, b *Bindings) (*Bindings, error) {
	if !sameStrings(a.vars, b.vars) {
		return nil, fmt.Errorf("fol: union over different variables %v vs %v", a.vars, b.vars)
	}
	out := NewBindings(a.vars)
	if err := out.rel.UnionInPlace(a.rel); err != nil {
		return nil, err
	}
	if err := out.rel.UnionInPlace(b.rel); err != nil {
		return nil, err
	}
	return out, nil
}

// Join returns the natural join of a and b on their shared variables.
func Join(a, b *Bindings) (*Bindings, error) {
	shared := intersect(a.vars, b.vars)
	outVars := unionStrings(a.vars, b.vars)
	out := NewBindings(outVars)

	// Index the smaller side on the shared columns.
	left, right := a, b
	if right.Len() < left.Len() {
		left, right = right, left
	}
	rightShared := positionsOf(right.vars, shared)
	ix, err := relation.BuildIndex(right.rel, rightShared)
	if err != nil {
		return nil, err
	}
	leftShared := positionsOf(left.vars, shared)

	// Precompute, for each output variable, where to read it from.
	type src struct {
		fromLeft bool
		pos      int
	}
	srcs := make([]src, len(out.vars))
	for i, v := range out.vars {
		if p := indexOf(left.vars, v); p >= 0 {
			srcs[i] = src{fromLeft: true, pos: p}
		} else {
			srcs[i] = src{fromLeft: false, pos: indexOf(right.vars, v)}
		}
	}

	var insertErr error
	left.rel.Each(func(lt tuple.Tuple) bool {
		key := lt.Project(leftShared)
		for _, rt := range ix.Lookup(key) {
			row := make(tuple.Tuple, len(out.vars))
			for i, s := range srcs {
				if s.fromLeft {
					row[i] = lt[s.pos]
				} else {
					row[i] = rt[s.pos]
				}
			}
			if _, err := out.rel.Insert(row); err != nil {
				insertErr = err
				return false
			}
		}
		return true
	})
	if insertErr != nil {
		return nil, insertErr
	}
	return out, nil
}

// AntiJoin returns the bindings of a whose projection onto b's
// variables is absent from b; b's variables must all occur in a. It is
// the set-based implementation of a negated enumerable conjunct.
func AntiJoin(a, b *Bindings) (*Bindings, error) {
	positions := make([]int, len(b.vars))
	for i, v := range b.vars {
		p := indexOf(a.vars, v)
		if p < 0 {
			return nil, fmt.Errorf("fol: antijoin variable %q not present in %v", v, a.vars)
		}
		positions[i] = p
	}
	out := NewBindings(a.vars)
	var err error
	a.rel.Each(func(t tuple.Tuple) bool {
		if !b.rel.Contains(t.Project(positions)) {
			if _, e := out.rel.Insert(t); e != nil {
				err = e
				return false
			}
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// String renders the binding set for diagnostics.
func (b *Bindings) String() string {
	return fmt.Sprintf("%v%s", b.vars, b.rel.String())
}

func dedupSorted(vars []string) []string {
	vs := append([]string(nil), vars...)
	sort.Strings(vs)
	out := vs[:0]
	for i, v := range vs {
		if i == 0 || vs[i-1] != v {
			out = append(out, v)
		}
	}
	return out
}

func indexOf(vars []string, v string) int {
	for i, w := range vars {
		if w == v {
			return i
		}
	}
	return -1
}

func positionsOf(vars []string, subset []string) []int {
	out := make([]int, len(subset))
	for i, v := range subset {
		out[i] = indexOf(vars, v)
	}
	return out
}

func intersect(a, b []string) []string {
	var out []string
	for _, v := range a {
		if indexOf(b, v) >= 0 {
			out = append(out, v)
		}
	}
	return out
}

func unionStrings(a, b []string) []string {
	return dedupSorted(append(append([]string(nil), a...), b...))
}

func sameStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
