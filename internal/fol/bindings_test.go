package fol

import (
	"testing"
	"testing/quick"

	"rtic/internal/tuple"
	"rtic/internal/value"
)

func TestNewBindingsSortsAndDedups(t *testing.T) {
	b := NewBindings([]string{"y", "x", "y"})
	vs := b.Vars()
	if len(vs) != 2 || vs[0] != "x" || vs[1] != "y" {
		t.Fatalf("Vars = %v", vs)
	}
}

func TestUnit(t *testing.T) {
	u := Unit()
	if u.Len() != 1 || len(u.Vars()) != 0 {
		t.Fatalf("Unit = %s", u)
	}
}

func TestAddContainsEach(t *testing.T) {
	b := NewBindings([]string{"x", "y"})
	if err := b.Add(Env{"x": value.Int(1), "y": value.Int(2)}); err != nil {
		t.Fatal(err)
	}
	if err := b.Add(Env{"x": value.Int(1), "y": value.Int(2), "z": value.Int(9)}); err != nil {
		t.Fatal(err) // extra vars ignored
	}
	if b.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (dedup)", b.Len())
	}
	ok, err := b.Contains(Env{"x": value.Int(1), "y": value.Int(2)})
	if err != nil || !ok {
		t.Fatalf("Contains = %v err=%v", ok, err)
	}
	if err := b.Add(Env{"x": value.Int(1)}); err == nil {
		t.Fatal("Add with missing variable accepted")
	}
	if _, err := b.Contains(Env{"x": value.Int(1)}); err == nil {
		t.Fatal("Contains with missing variable accepted")
	}
	n := 0
	b.Each(func(env Env) bool {
		n++
		if !env["x"].Equal(value.Int(1)) {
			t.Error("Each env wrong")
		}
		return true
	})
	if n != 1 {
		t.Fatalf("Each visited %d", n)
	}
}

func TestEachReusesEnvSafely(t *testing.T) {
	b := NewBindings([]string{"x"})
	for i := int64(0); i < 3; i++ {
		if err := b.Add(Env{"x": value.Int(i)}); err != nil {
			t.Fatal(err)
		}
	}
	var kept []Env
	b.Each(func(env Env) bool {
		kept = append(kept, env.Clone())
		return true
	})
	seen := map[int64]bool{}
	for _, env := range kept {
		seen[env["x"].AsInt()] = true
	}
	if len(seen) != 3 {
		t.Fatalf("cloned envs collapsed: %v", seen)
	}
}

func TestProject(t *testing.T) {
	b := NewBindings([]string{"x", "y"})
	_ = b.Add(Env{"x": value.Int(1), "y": value.Int(10)})
	_ = b.Add(Env{"x": value.Int(1), "y": value.Int(20)})
	p, err := b.Project([]string{"x"})
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 1 {
		t.Fatalf("projection Len = %d, want 1", p.Len())
	}
	if _, err := b.Project([]string{"z"}); err == nil {
		t.Fatal("projection onto unknown variable accepted")
	}
	// Projection onto all vars is identity.
	q, err := b.Project([]string{"y", "x"})
	if err != nil || q.Len() != 2 {
		t.Fatalf("full projection Len = %d err=%v", q.Len(), err)
	}
}

func TestFilter(t *testing.T) {
	b := NewBindings([]string{"x"})
	for i := int64(0); i < 5; i++ {
		_ = b.Add(Env{"x": value.Int(i)})
	}
	f, err := b.Filter(func(env Env) (bool, error) { return env["x"].AsInt()%2 == 0, nil })
	if err != nil || f.Len() != 3 {
		t.Fatalf("Filter Len = %d err=%v", f.Len(), err)
	}
}

func TestUnion(t *testing.T) {
	a := NewBindings([]string{"x"})
	b := NewBindings([]string{"x"})
	_ = a.Add(Env{"x": value.Int(1)})
	_ = b.Add(Env{"x": value.Int(1)})
	_ = b.Add(Env{"x": value.Int(2)})
	u, err := Union(a, b)
	if err != nil || u.Len() != 2 {
		t.Fatalf("Union Len = %d err=%v", u.Len(), err)
	}
	c := NewBindings([]string{"y"})
	if _, err := Union(a, c); err == nil {
		t.Fatal("union over different vars accepted")
	}
}

func TestJoinNatural(t *testing.T) {
	a := NewBindings([]string{"x", "y"})
	_ = a.Add(Env{"x": value.Int(1), "y": value.Int(10)})
	_ = a.Add(Env{"x": value.Int(2), "y": value.Int(20)})
	b := NewBindings([]string{"y", "z"})
	_ = b.Add(Env{"y": value.Int(10), "z": value.Str("a")})
	_ = b.Add(Env{"y": value.Int(10), "z": value.Str("b")})
	_ = b.Add(Env{"y": value.Int(99), "z": value.Str("c")})
	j, err := Join(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if got := j.Vars(); len(got) != 3 {
		t.Fatalf("join vars = %v", got)
	}
	if j.Len() != 2 {
		t.Fatalf("join Len = %d, want 2", j.Len())
	}
	ok, _ := j.Contains(Env{"x": value.Int(1), "y": value.Int(10), "z": value.Str("b")})
	if !ok {
		t.Fatal("join missing expected row")
	}
}

func TestJoinDisjointIsCartesian(t *testing.T) {
	a := NewBindings([]string{"x"})
	b := NewBindings([]string{"y"})
	for i := int64(0); i < 3; i++ {
		_ = a.Add(Env{"x": value.Int(i)})
		_ = b.Add(Env{"y": value.Int(i)})
	}
	j, err := Join(a, b)
	if err != nil || j.Len() != 9 {
		t.Fatalf("cartesian Len = %d err=%v", j.Len(), err)
	}
}

func TestJoinWithUnit(t *testing.T) {
	a := NewBindings([]string{"x"})
	_ = a.Add(Env{"x": value.Int(1)})
	j, err := Join(Unit(), a)
	if err != nil || j.Len() != 1 {
		t.Fatalf("unit join Len = %d err=%v", j.Len(), err)
	}
	j2, err := Join(a, NewBindings(nil)) // empty nullary = false
	if err != nil || j2.Len() != 0 {
		t.Fatalf("join with empty = %d err=%v", j2.Len(), err)
	}
}

func TestRowsAligned(t *testing.T) {
	b := NewBindings([]string{"b", "a"})
	_ = b.Add(Env{"a": value.Int(1), "b": value.Int(2)})
	rows := b.Rows()
	if len(rows) != 1 || !rows[0].Equal(tuple.Ints(1, 2)) {
		t.Fatalf("Rows = %v (vars %v)", rows, b.Vars())
	}
}

func TestAntiJoin(t *testing.T) {
	a := NewBindings([]string{"x", "y"})
	_ = a.Add(Env{"x": value.Int(1), "y": value.Int(10)})
	_ = a.Add(Env{"x": value.Int(2), "y": value.Int(20)})
	_ = a.Add(Env{"x": value.Int(3), "y": value.Int(30)})
	b := NewBindings([]string{"x"})
	_ = b.Add(Env{"x": value.Int(2)})
	out, err := AntiJoin(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 {
		t.Fatalf("antijoin Len = %d, want 2", out.Len())
	}
	if ok, _ := out.Contains(Env{"x": value.Int(2), "y": value.Int(20)}); ok {
		t.Fatal("excluded row survived")
	}
	// Variable of b absent from a: error.
	c := NewBindings([]string{"z"})
	if _, err := AntiJoin(a, c); err == nil {
		t.Fatal("antijoin with foreign variable accepted")
	}
	// Empty b is identity.
	out, err = AntiJoin(a, NewBindings([]string{"x"}))
	if err != nil || out.Len() != 3 {
		t.Fatalf("antijoin with empty = %d err=%v", out.Len(), err)
	}
}

func TestQuickAntiJoinComplementsSemiJoin(t *testing.T) {
	f := func(p genPair) bool {
		proj, err := p.b.Project([]string{"y"})
		if err != nil {
			return false
		}
		anti, err := AntiJoin(p.a, proj)
		if err != nil {
			return false
		}
		// Every row of a is either in the antijoin or joins with proj.
		count := 0
		ok := true
		p.a.Each(func(env Env) bool {
			inAnti, err := anti.Contains(env)
			if err != nil {
				ok = false
				return false
			}
			hit, err := proj.Contains(Env{"y": env["y"]})
			if err != nil {
				ok = false
				return false
			}
			if inAnti == hit {
				ok = false // must be exactly one of the two
				return false
			}
			count++
			return true
		})
		return ok && count == p.a.Len()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
