package fol

import (
	"fmt"
	"testing"

	"rtic/internal/mtl"
	"rtic/internal/schema"
	"rtic/internal/storage"
	"rtic/internal/tuple"
	"rtic/internal/value"
)

func benchBindings(vars []string, n int) *Bindings {
	b := NewBindings(vars)
	env := make(Env, len(vars))
	for i := int64(0); i < int64(n); i++ {
		for k, v := range vars {
			env[v] = value.Int((i + int64(k)) % 97)
		}
		env[vars[0]] = value.Int(i % 97)
		if len(vars) > 1 {
			env[vars[1]] = value.Int(i)
		}
		_ = b.Add(env)
	}
	return b
}

func BenchmarkJoin(b *testing.B) {
	for _, n := range []int{64, 1024} {
		l := benchBindings([]string{"x", "y"}, n)
		r := benchBindings([]string{"y", "z"}, n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Join(l, r); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func benchState(b *testing.B, rows int) *storage.State {
	b.Helper()
	s := schema.NewBuilder().Relation("emp", 2).Relation("mgr", 1).MustBuild()
	st := storage.NewState(s)
	tx := storage.NewTransaction()
	for i := int64(0); i < int64(rows); i++ {
		tx.Insert("emp", tuple.Ints(i, i%8))
		if i%3 == 0 {
			tx.Insert("mgr", tuple.Ints(i))
		}
	}
	if err := st.Apply(tx); err != nil {
		b.Fatal(err)
	}
	return st
}

type noOracle struct{}

func (noOracle) Enumerate(f mtl.Formula) (*Bindings, error) {
	return nil, fmt.Errorf("no temporal nodes in benchmarks")
}
func (noOracle) Test(f mtl.Formula, _ Env) (bool, error) {
	return false, fmt.Errorf("no temporal nodes in benchmarks")
}

func BenchmarkEvalConjunction(b *testing.B) {
	st := benchState(b, 1024)
	f := mtl.Normalize(mtl.MustParse("emp(x, d) and mgr(x) and not emp(x, 7)"))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewEvaluator(st, noOracle{}).Eval(f); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTestQuantifier(b *testing.B) {
	st := benchState(b, 256)
	f := mtl.MustParse("forall x: mgr(x) -> exists d: emp(x, d)")
	ev := NewEvaluator(st, noOracle{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ev.Test(f, Env{}); err != nil {
			b.Fatal(err)
		}
	}
}
