package fol

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"rtic/internal/value"
)

// randBindings generates a random binding set over the given variables
// from quick's rand source.
func randBindings(r *rand.Rand, vars []string, rows int) *Bindings {
	b := NewBindings(vars)
	for i := 0; i < rows; i++ {
		env := make(Env, len(vars))
		for _, v := range vars {
			env[v] = value.Int(r.Int63n(4))
		}
		_ = b.Add(env)
	}
	return b
}

// genPair is a quick.Generator producing two joinable binding sets with
// overlapping variable sets.
type genPair struct {
	a, b *Bindings
}

func (genPair) Generate(r *rand.Rand, size int) reflect.Value {
	rows := 1 + r.Intn(8)
	p := genPair{
		a: randBindings(r, []string{"x", "y"}, rows),
		b: randBindings(r, []string{"y", "z"}, rows),
	}
	return reflect.ValueOf(p)
}

func equalBindings(a, b *Bindings) bool {
	if a.Len() != b.Len() {
		return false
	}
	ra, rb := a.Rows(), b.Rows()
	for i := range ra {
		if !ra[i].Equal(rb[i]) {
			return false
		}
	}
	return true
}

func TestQuickJoinCommutative(t *testing.T) {
	f := func(p genPair) bool {
		ab, err1 := Join(p.a, p.b)
		ba, err2 := Join(p.b, p.a)
		if err1 != nil || err2 != nil {
			return false
		}
		return equalBindings(ab, ba)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickJoinWithUnitIsIdentity(t *testing.T) {
	f := func(p genPair) bool {
		j, err := Join(p.a, Unit())
		if err != nil {
			return false
		}
		return equalBindings(j, p.a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickJoinIdempotent(t *testing.T) {
	f := func(p genPair) bool {
		j, err := Join(p.a, p.a)
		if err != nil {
			return false
		}
		return equalBindings(j, p.a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickUnionLaws(t *testing.T) {
	gen := func(r *rand.Rand) *Bindings { return randBindings(r, []string{"x"}, 1+r.Intn(6)) }
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := gen(r), gen(r)
		ab, err1 := Union(a, b)
		ba, err2 := Union(b, a)
		if err1 != nil || err2 != nil {
			return false
		}
		if !equalBindings(ab, ba) {
			return false // commutative
		}
		aa, err := Union(a, a)
		if err != nil || !equalBindings(aa, a) {
			return false // idempotent
		}
		// |a ∪ b| ≤ |a| + |b| and ≥ max(|a|,|b|).
		if ab.Len() > a.Len()+b.Len() || ab.Len() < a.Len() || ab.Len() < b.Len() {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickProjectionShrinks(t *testing.T) {
	f := func(p genPair) bool {
		proj, err := p.a.Project([]string{"x"})
		if err != nil {
			return false
		}
		// Projection never grows the set and preserves emptiness.
		if proj.Len() > p.a.Len() {
			return false
		}
		if p.a.Empty() != proj.Empty() {
			return false
		}
		// Projecting again is idempotent.
		again, err := proj.Project([]string{"x"})
		if err != nil {
			return false
		}
		return equalBindings(proj, again)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickJoinSubsetOfCartesian(t *testing.T) {
	f := func(p genPair) bool {
		j, err := Join(p.a, p.b)
		if err != nil {
			return false
		}
		// The natural join never exceeds the cartesian bound, and every
		// joined row restricts to rows present in both inputs.
		if j.Len() > p.a.Len()*p.b.Len() {
			return false
		}
		ok := true
		j.Each(func(env Env) bool {
			inA, err1 := p.a.Contains(env)
			inB, err2 := p.b.Contains(env)
			if err1 != nil || err2 != nil || !inA || !inB {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickFilterSubset(t *testing.T) {
	f := func(p genPair, keepEven bool) bool {
		flt, err := p.a.Filter(func(env Env) (bool, error) {
			return (env["x"].AsInt()%2 == 0) == keepEven, nil
		})
		if err != nil {
			return false
		}
		if flt.Len() > p.a.Len() {
			return false
		}
		ok := true
		flt.Each(func(env Env) bool {
			in, err := p.a.Contains(env)
			if err != nil || !in {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
