// Package tuple provides fixed-arity sequences of values — the rows of
// database relations and the variable bindings flowing through the
// constraint evaluator.
package tuple

import (
	"strings"

	"rtic/internal/value"
)

// Tuple is an immutable-by-convention ordered sequence of values.
// Code that stores tuples copies them; callers may keep their slices.
type Tuple []value.Value

// Of builds a tuple from its arguments.
func Of(vs ...value.Value) Tuple { return Tuple(vs) }

// Clone returns an independent copy of t.
func (t Tuple) Clone() Tuple {
	if t == nil {
		return nil
	}
	c := make(Tuple, len(t))
	copy(c, t)
	return c
}

// Equal reports component-wise equality.
func (t Tuple) Equal(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if !t[i].Equal(u[i]) {
			return false
		}
	}
	return true
}

// Compare orders tuples lexicographically; shorter tuples that are a
// prefix of longer ones order first.
func (t Tuple) Compare(u Tuple) int {
	n := len(t)
	if len(u) < n {
		n = len(u)
	}
	for i := 0; i < n; i++ {
		if c := t[i].Compare(u[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(t) < len(u):
		return -1
	case len(t) > len(u):
		return 1
	}
	return 0
}

// Key returns a collision-free string encoding of t, suitable as a map
// key. Component keys are length-prefixed so that concatenations cannot
// collide across different arities or splits.
func (t Tuple) Key() string {
	var b strings.Builder
	for _, v := range t {
		k := v.Key()
		// Length prefix keeps ("ab","c") distinct from ("a","bc").
		b.WriteString(itoa(len(k)))
		b.WriteByte(':')
		b.WriteString(k)
	}
	return b.String()
}

// AppendKeyTo appends the Key() encoding of t to dst and returns the
// extended slice. It produces exactly the bytes of Key(), so a key built
// in a reusable buffer can probe maps keyed by Key() strings without
// allocating.
func (t Tuple) AppendKeyTo(dst []byte) []byte {
	for _, v := range t {
		dst = AppendValueKey(dst, v)
	}
	return dst
}

// AppendValueKey appends one component's length-prefixed key encoding
// ("<len>:<value key>") to dst — the per-column building block plan
// executors use when a probe key is assembled from scattered slots
// rather than a materialized tuple.
func AppendValueKey(dst []byte, v value.Value) []byte {
	dst = appendUint(dst, v.KeyLen())
	dst = append(dst, ':')
	return v.AppendKey(dst)
}

// appendUint appends the decimal rendering of a non-negative int,
// byte-for-byte identical to itoa, without allocating.
func appendUint(dst []byte, n int) []byte {
	if n == 0 {
		return append(dst, '0')
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return append(dst, buf[i:]...)
}

// String renders the tuple as "(v1, v2, …)".
func (t Tuple) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, v := range t {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(v.String())
	}
	b.WriteByte(')')
	return b.String()
}

// Project returns the tuple restricted to the given positions, in order.
func (t Tuple) Project(positions []int) Tuple {
	p := make(Tuple, len(positions))
	for i, pos := range positions {
		p[i] = t[pos]
	}
	return p
}

// Size estimates the in-memory footprint of t in bytes.
func (t Tuple) Size() int {
	n := 24 // slice header
	for _, v := range t {
		n += v.Size()
	}
	return n
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// Ints builds a tuple of integer values; a convenience for tests and
// workload generators.
func Ints(xs ...int64) Tuple {
	t := make(Tuple, len(xs))
	for i, x := range xs {
		t[i] = value.Int(x)
	}
	return t
}

// Strs builds a tuple of string values.
func Strs(xs ...string) Tuple {
	t := make(Tuple, len(xs))
	for i, x := range xs {
		t[i] = value.Str(x)
	}
	return t
}
