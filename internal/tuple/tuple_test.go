package tuple

import (
	"testing"
	"testing/quick"

	"rtic/internal/value"
)

func TestCloneIndependence(t *testing.T) {
	orig := Ints(1, 2, 3)
	c := orig.Clone()
	c[0] = value.Int(99)
	if orig[0].AsInt() != 1 {
		t.Fatal("Clone aliases original storage")
	}
	if Tuple(nil).Clone() != nil {
		t.Fatal("Clone(nil) should be nil")
	}
}

func TestEqual(t *testing.T) {
	if !Ints(1, 2).Equal(Ints(1, 2)) {
		t.Fatal("equal tuples reported unequal")
	}
	if Ints(1, 2).Equal(Ints(1, 3)) {
		t.Fatal("unequal tuples reported equal")
	}
	if Ints(1).Equal(Ints(1, 2)) {
		t.Fatal("different arities reported equal")
	}
	if !Of().Equal(Of()) {
		t.Fatal("empty tuples must be equal")
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Tuple
		want int
	}{
		{Ints(1, 2), Ints(1, 2), 0},
		{Ints(1, 2), Ints(1, 3), -1},
		{Ints(2), Ints(1, 9), 1},
		{Ints(1), Ints(1, 0), -1},
		{Strs("a"), Strs("b"), -1},
		{Ints(5), Strs("5"), -1},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("Compare(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestKeyNoCollisions(t *testing.T) {
	pairs := [][2]Tuple{
		{Strs("ab", "c"), Strs("a", "bc")},
		{Ints(12), Ints(1, 2)},
		{Of(value.Int(5)), Of(value.Str("5"))},
		{Strs(""), Of()},
	}
	for _, p := range pairs {
		if p[0].Key() == p[1].Key() {
			t.Errorf("Key collision between %v and %v: %q", p[0], p[1], p[0].Key())
		}
	}
}

func TestKeyDeterministic(t *testing.T) {
	a := Strs("x", "y")
	if a.Key() != Strs("x", "y").Key() {
		t.Fatal("Key not deterministic")
	}
}

func TestString(t *testing.T) {
	got := Of(value.Int(1), value.Str("a")).String()
	if got != "(1, 'a')" {
		t.Fatalf("String = %q", got)
	}
	if Of().String() != "()" {
		t.Fatalf("empty tuple String = %q", Of().String())
	}
}

func TestProject(t *testing.T) {
	tt := Ints(10, 20, 30)
	got := tt.Project([]int{2, 0})
	if !got.Equal(Ints(30, 10)) {
		t.Fatalf("Project = %v", got)
	}
	if len(tt.Project(nil)) != 0 {
		t.Fatal("empty projection should be empty")
	}
}

func TestSizeGrows(t *testing.T) {
	if Ints(1, 2).Size() <= Ints(1).Size() {
		t.Fatal("Size must grow with arity")
	}
}

func TestQuickKeyInjectiveOnInts(t *testing.T) {
	f := func(a, b []int64) bool {
		ta, tb := Ints(a...), Ints(b...)
		return (ta.Key() == tb.Key()) == ta.Equal(tb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCompareAntisymmetric(t *testing.T) {
	f := func(a, b []int64) bool {
		ta, tb := Ints(a...), Ints(b...)
		return ta.Compare(tb) == -tb.Compare(ta)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBuilders(t *testing.T) {
	it := Ints(3, 4)
	if it[0].Kind() != value.KindInt || it[1].AsInt() != 4 {
		t.Fatal("Ints built wrong tuple")
	}
	st := Strs("p", "q")
	if st[1].AsString() != "q" {
		t.Fatal("Strs built wrong tuple")
	}
}
