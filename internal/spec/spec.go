// Package spec parses the textual formats the rtic CLI consumes: a spec
// file declaring relations and constraints, and a transaction log with
// one timestamped transaction per line.
//
// Spec file:
//
//	-- comments run to end of line
//	relation hire/1
//	relation fire/1
//	constraint no_quick_rehire: hire(e) -> not once[0,365] fire(e)
//
// Log line:
//
//	@100 -fire(7) +hire(7) +badge('ann', 'red')
//
// i.e. "@<time>" followed by "+rel(literals)" insertions and
// "-rel(literals)" deletions.
package spec

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"rtic/internal/schema"
	"rtic/internal/storage"
	"rtic/internal/tuple"
	"rtic/internal/value"
	"rtic/internal/workload"
)

// Spec is a parsed spec file.
type Spec struct {
	Schema      *schema.Schema
	Constraints []workload.ConstraintSpec
}

// ParseSpec reads relation and constraint declarations.
func ParseSpec(r io.Reader) (*Spec, error) {
	b := schema.NewBuilder()
	var cons []workload.ConstraintSpec
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.Index(line, "--"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "relation "):
			rest := strings.TrimSpace(strings.TrimPrefix(line, "relation "))
			name, arityStr, ok := strings.Cut(rest, "/")
			if !ok {
				return nil, fmt.Errorf("spec: line %d: want \"relation name/arity\", got %q", lineNo, line)
			}
			arity, err := strconv.Atoi(strings.TrimSpace(arityStr))
			if err != nil {
				return nil, fmt.Errorf("spec: line %d: bad arity %q", lineNo, arityStr)
			}
			b.Relation(strings.TrimSpace(name), arity)
		case strings.HasPrefix(line, "constraint "):
			rest := strings.TrimSpace(strings.TrimPrefix(line, "constraint "))
			name, src, ok := strings.Cut(rest, ":")
			if !ok {
				return nil, fmt.Errorf("spec: line %d: want \"constraint name: formula\", got %q", lineNo, line)
			}
			cons = append(cons, workload.ConstraintSpec{
				Name:   strings.TrimSpace(name),
				Source: strings.TrimSpace(src),
				Line:   lineNo,
			})
		default:
			return nil, fmt.Errorf("spec: line %d: unknown directive %q", lineNo, line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	s, err := b.Build()
	if err != nil {
		return nil, err
	}
	if len(cons) == 0 {
		return nil, fmt.Errorf("spec: no constraints declared")
	}
	return &Spec{Schema: s, Constraints: cons}, nil
}

// ParseLogLine reads one "@time ±rel(args) …" line. Empty lines and
// comment lines ("--") yield ok=false.
func ParseLogLine(line string) (t uint64, tx *storage.Transaction, ok bool, err error) {
	if i := strings.Index(line, "--"); i >= 0 {
		line = line[:i]
	}
	line = strings.TrimSpace(line)
	if line == "" {
		return 0, nil, false, nil
	}
	if !strings.HasPrefix(line, "@") {
		return 0, nil, false, fmt.Errorf("spec: log line must start with \"@time\": %q", line)
	}
	fields := splitOps(line)
	t, err = strconv.ParseUint(strings.TrimPrefix(fields[0], "@"), 10, 64)
	if err != nil {
		return 0, nil, false, fmt.Errorf("spec: bad timestamp in %q: %v", fields[0], err)
	}
	tx = storage.NewTransaction()
	for _, f := range fields[1:] {
		if len(f) < 2 || (f[0] != '+' && f[0] != '-') {
			return 0, nil, false, fmt.Errorf("spec: bad operation %q (want +rel(...) or -rel(...))", f)
		}
		insert := f[0] == '+'
		rel, row, err := parseTupleCall(f[1:])
		if err != nil {
			return 0, nil, false, err
		}
		if insert {
			tx.Insert(rel, row)
		} else {
			tx.Delete(rel, row)
		}
	}
	return t, tx, true, nil
}

// splitOps splits on whitespace outside single-quoted strings and
// outside parentheses, so "+badge('ann', 'red')" stays one token.
func splitOps(line string) []string {
	var out []string
	var cur strings.Builder
	inStr := false
	depth := 0
	for i := 0; i < len(line); i++ {
		c := line[i]
		if c == '\'' {
			inStr = !inStr
		}
		if !inStr {
			switch c {
			case '(':
				depth++
			case ')':
				if depth > 0 {
					depth--
				}
			}
		}
		if !inStr && depth == 0 && (c == ' ' || c == '\t') {
			if cur.Len() > 0 {
				out = append(out, cur.String())
				cur.Reset()
			}
			continue
		}
		cur.WriteByte(c)
	}
	if cur.Len() > 0 {
		out = append(out, cur.String())
	}
	return out
}

// parseTupleCall reads "rel(lit, lit, …)".
func parseTupleCall(s string) (string, tuple.Tuple, error) {
	open := strings.IndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(s, ")") {
		return "", nil, fmt.Errorf("spec: bad tuple %q", s)
	}
	rel := s[:open]
	body := s[open+1 : len(s)-1]
	if strings.TrimSpace(body) == "" {
		return rel, tuple.Of(), nil
	}
	parts := splitArgs(body)
	row := make(tuple.Tuple, len(parts))
	for i, p := range parts {
		v, err := value.Parse(strings.TrimSpace(p))
		if err != nil {
			return "", nil, fmt.Errorf("spec: tuple %q: %w", s, err)
		}
		row[i] = v
	}
	return rel, row, nil
}

// splitArgs splits on commas outside single-quoted strings.
func splitArgs(body string) []string {
	var out []string
	var cur strings.Builder
	inStr := false
	for i := 0; i < len(body); i++ {
		c := body[i]
		if c == '\'' {
			inStr = !inStr
		}
		if !inStr && c == ',' {
			out = append(out, cur.String())
			cur.Reset()
			continue
		}
		cur.WriteByte(c)
	}
	out = append(out, cur.String())
	return out
}
