package spec

import (
	"strings"
	"testing"

	"rtic/internal/tuple"
)

func TestParseSpec(t *testing.T) {
	src := `
-- HR rules
relation hire/1
relation fire/1

constraint no_quick_rehire: hire(e) -> not once[0,365] fire(e)
constraint other: fire(e) -> not hire(e)
`
	sp, err := ParseSpec(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if sp.Schema.Len() != 2 {
		t.Fatalf("schema = %s", sp.Schema)
	}
	if len(sp.Constraints) != 2 || sp.Constraints[0].Name != "no_quick_rehire" {
		t.Fatalf("constraints = %v", sp.Constraints)
	}
	if !strings.Contains(sp.Constraints[0].Source, "once[0,365]") {
		t.Fatalf("constraint source = %q", sp.Constraints[0].Source)
	}
}

func TestParseSpecErrors(t *testing.T) {
	cases := []struct{ src, frag string }{
		{"relation hire", "relation name/arity"},
		{"relation hire/x", "bad arity"},
		{"constraint no colon here", "constraint name"},
		{"bogus line", "unknown directive"},
		{"relation hire/1", "no constraints"},
		{"relation hire/1\nrelation hire/1\nconstraint c: hire(e) -> not hire(e)", "duplicate"},
	}
	for _, c := range cases {
		_, err := ParseSpec(strings.NewReader(c.src))
		if err == nil || !strings.Contains(err.Error(), c.frag) {
			t.Errorf("ParseSpec(%q) err = %v, want containing %q", c.src, err, c.frag)
		}
	}
}

func TestParseLogLine(t *testing.T) {
	tm, tx, ok, err := ParseLogLine("@100 -fire(7) +hire(7) +badge('ann', 'red')")
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if tm != 100 || tx.Len() != 3 {
		t.Fatalf("tm=%d ops=%d", tm, tx.Len())
	}
	ops := tx.Ops()
	if ops[0].Insert || ops[0].Rel != "fire" || !ops[0].Tuple.Equal(tuple.Ints(7)) {
		t.Fatalf("op0 = %+v", ops[0])
	}
	if !ops[2].Tuple.Equal(tuple.Strs("ann", "red")) {
		t.Fatalf("op2 = %+v", ops[2])
	}
}

func TestParseLogLineEmptyAndComments(t *testing.T) {
	for _, line := range []string{"", "   ", "-- a comment", "@5 +p(1) -- trailing"} {
		tm, _, ok, err := ParseLogLine(line)
		if err != nil {
			t.Fatalf("ParseLogLine(%q): %v", line, err)
		}
		if line == "@5 +p(1) -- trailing" {
			if !ok || tm != 5 {
				t.Fatalf("trailing comment broke parse: ok=%v tm=%d", ok, tm)
			}
		} else if ok {
			t.Fatalf("ParseLogLine(%q) = ok", line)
		}
	}
}

func TestParseLogLineNullaryAndSpaces(t *testing.T) {
	_, tx, ok, err := ParseLogLine("@1 +alarm()")
	if err != nil || !ok || tx.Len() != 1 {
		t.Fatalf("nullary: ok=%v err=%v", ok, err)
	}
	if len(tx.Ops()[0].Tuple) != 0 {
		t.Fatal("nullary tuple has values")
	}
	// A quoted string containing a space must survive splitting.
	_, tx, _, err = ParseLogLine("@2 +name('a b')")
	if err != nil {
		t.Fatal(err)
	}
	if !tx.Ops()[0].Tuple.Equal(tuple.Strs("a b")) {
		t.Fatalf("tuple = %v", tx.Ops()[0].Tuple)
	}
}

func TestParseLogLineErrors(t *testing.T) {
	cases := []struct{ line, frag string }{
		{"100 +p(1)", "must start"},
		{"@x +p(1)", "bad timestamp"},
		{"@1 p(1)", "bad operation"},
		{"@1 +p", "bad tuple"},
		{"@1 +p(1,zz)", "bad literal"},
	}
	for _, c := range cases {
		_, _, _, err := ParseLogLine(c.line)
		if err == nil || !strings.Contains(err.Error(), c.frag) {
			t.Errorf("ParseLogLine(%q) err = %v, want containing %q", c.line, err, c.frag)
		}
	}
}
