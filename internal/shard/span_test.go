package shard

import (
	"strconv"
	"testing"
	"time"

	"rtic/internal/obs"
	"rtic/internal/storage"
	"rtic/internal/tuple"
)

// TestRouterCommitSpans checks the sharded span shape: one commit root
// per Step with a shard.commit child per shard, each on its own track
// and carrying its shard index.
func TestRouterCommitSpans(t *testing.T) {
	s := testSchema(t)
	r, err := New(s, 3, coreFactory(s))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.AddConstraint(parse(t, s, "part", "p(x) -> not once[0,3] q(x)")); err != nil {
		t.Fatal(err)
	}
	rec := obs.NewSpanRecorder(16)
	r.SetObserver(&obs.Observer{Spans: rec})

	tx := storage.NewTransaction().
		Insert("p", tuple.Ints(1)).Insert("p", tuple.Ints(2)).Insert("q", tuple.Ints(3))
	if _, err := r.Step(1, tx); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Step(2, storage.NewTransaction().Insert("p", tuple.Ints(4))); err != nil {
		t.Fatal(err)
	}

	roots := rec.Snapshot()
	if len(roots) != 2 {
		t.Fatalf("recorded %d commit spans, want 2", len(roots))
	}
	for i, root := range roots {
		if root.Name != obs.SpanCommit {
			t.Fatalf("root %d is %q, want %q", i, root.Name, obs.SpanCommit)
		}
		if root.Time != uint64(i+1) {
			t.Errorf("root %d at t=%d, want %d", i, root.Time, i+1)
		}
		if len(root.Children) != 3 {
			t.Fatalf("root %d has %d shard children, want 3", i, len(root.Children))
		}
		seen := map[string]bool{}
		for _, ch := range root.Children {
			if ch.Name != obs.SpanShardCommit {
				t.Errorf("child %q, want %q", ch.Name, obs.SpanShardCommit)
			}
			idx, err := strconv.Atoi(ch.Detail)
			if err != nil || idx < 0 || idx > 2 {
				t.Errorf("shard child detail %q is not a shard index", ch.Detail)
			}
			seen[ch.Detail] = true
			if ch.Track != idx+1 {
				t.Errorf("shard %s on track %d, want %d", ch.Detail, ch.Track, idx+1)
			}
			if ch.Dur <= 0 {
				t.Errorf("shard %s span has no duration", ch.Detail)
			}
			if ch.Start.Before(root.Start) || ch.Start.Add(ch.Dur).After(root.Start.Add(root.Dur).Add(time.Millisecond)) {
				t.Errorf("shard %s span escapes its commit", ch.Detail)
			}
		}
		if len(seen) != 3 {
			t.Errorf("root %d covers shards %v, want all of 0..2", i, seen)
		}
	}
}

// TestRouterShardSkewGauge checks the skew gauge moves after a
// multi-shard commit: max/min shard duration is >= 1 by construction.
func TestRouterShardSkewGauge(t *testing.T) {
	s := testSchema(t)
	r, err := New(s, 2, coreFactory(s))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.AddConstraint(parse(t, s, "part", "p(x) -> not once[0,3] q(x)")); err != nil {
		t.Fatal(err)
	}
	m := obs.NewMetrics(obs.NewRegistry())
	r.SetObserver(&obs.Observer{Metrics: m})
	for i := 0; i < 8; i++ {
		tx := storage.NewTransaction().Insert("p", tuple.Ints(int64(i))).Insert("q", tuple.Ints(int64(i+1)))
		if _, err := r.Step(uint64(i+1), tx); err != nil {
			t.Fatal(err)
		}
	}
	if skew := m.ShardSkew.Value(); skew < 1 {
		t.Errorf("shard skew %v, want >= 1 after multi-shard commits", skew)
	}
}

func TestShardSkew(t *testing.T) {
	cases := []struct {
		durs []time.Duration
		want float64
	}{
		{nil, 0},
		{[]time.Duration{time.Millisecond}, 1},
		{[]time.Duration{time.Millisecond, 4 * time.Millisecond}, 4},
		{[]time.Duration{0, time.Millisecond}, 0}, // zero min: undefined, reported as 0
	}
	for _, c := range cases {
		if got := shardSkew(c.durs); got != c.want {
			t.Errorf("shardSkew(%v) = %v, want %v", c.durs, got, c.want)
		}
	}
}
