package shard

import (
	"testing"

	"rtic/internal/check"
	"rtic/internal/schema"
)

func testSchema(t *testing.T) *schema.Schema {
	t.Helper()
	return schema.NewBuilder().
		Relation("p", 1).
		Relation("q", 1).
		Relation("r", 2).
		MustBuild()
}

func parse(t *testing.T, s *schema.Schema, name, src string) *check.Constraint {
	t.Helper()
	con, err := check.Parse(name, src, s)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return con
}

func TestAnalyzePartitionable(t *testing.T) {
	s := testSchema(t)
	con := parse(t, s, "c", "p(x) -> not once[0,3] q(x)")
	plan, err := Analyze(s, []*check.Constraint{con})
	if err != nil {
		t.Fatal(err)
	}
	cp := plan.Cons[0]
	if !cp.Partitioned || cp.KeyVar != "x" {
		t.Fatalf("constraint placement = %+v, want partitioned by x", cp)
	}
	for _, rel := range []string{"p", "q"} {
		rp := plan.Rels[rel]
		if !rp.Partitioned || rp.Column != 0 {
			t.Fatalf("%s placement = %+v, want partitioned at column 0", rel, rp)
		}
	}
	// r is read by no constraint: spread by its first column.
	if rp := plan.Rels["r"]; !rp.Partitioned || rp.Column != 0 {
		t.Fatalf("r placement = %+v, want partitioned at column 0", rp)
	}
}

func TestAnalyzeBinaryJoinKey(t *testing.T) {
	s := testSchema(t)
	// y joins r's second column with q; x appears only in r.
	con := parse(t, s, "c", "r(x, y) -> not once[0,2] q(y)")
	plan, err := Analyze(s, []*check.Constraint{con})
	if err != nil {
		t.Fatal(err)
	}
	if cp := plan.Cons[0]; !cp.Partitioned || cp.KeyVar != "y" {
		t.Fatalf("constraint placement = %+v, want partitioned by y", cp)
	}
	if rp := plan.Rels["r"]; !rp.Partitioned || rp.Column != 1 {
		t.Fatalf("r placement = %+v, want partitioned at column 1", rp)
	}
	if rp := plan.Rels["q"]; !rp.Partitioned || rp.Column != 0 {
		t.Fatalf("q placement = %+v, want partitioned at column 0", rp)
	}
}

func TestAnalyzeClosedConstraintGlobal(t *testing.T) {
	s := testSchema(t)
	con := parse(t, s, "c", "p(0) -> not once[0,3] q(0)")
	plan, err := Analyze(s, []*check.Constraint{con})
	if err != nil {
		t.Fatal(err)
	}
	if cp := plan.Cons[0]; cp.Partitioned || cp.Reason == "" {
		t.Fatalf("closed constraint placement = %+v, want global with a reason", cp)
	}
	for _, rel := range []string{"p", "q"} {
		if rp := plan.Rels[rel]; rp.Partitioned {
			t.Fatalf("%s placement = %+v, want global", rel, rp)
		}
	}
}

func TestAnalyzeSelfJoinConflictGlobal(t *testing.T) {
	s := testSchema(t)
	// x sits at column 0 in one atom and column 1 in the other (and
	// symmetrically for y): no single partition column works.
	con := parse(t, s, "c", "r(x, y) -> not once[0,2] r(y, x)")
	plan, err := Analyze(s, []*check.Constraint{con})
	if err != nil {
		t.Fatal(err)
	}
	if cp := plan.Cons[0]; cp.Partitioned {
		t.Fatalf("self-join placement = %+v, want global", cp)
	}
	if rp := plan.Rels["r"]; rp.Partitioned {
		t.Fatalf("r placement = %+v, want global", rp)
	}
}

func TestAnalyzeDemotionCascade(t *testing.T) {
	s := testSchema(t)
	partitionable := parse(t, s, "a", "p(x) -> not once[0,3] q(x)")
	closed := parse(t, s, "b", "q(0) -> not p(0)")
	plan, err := Analyze(s, []*check.Constraint{partitionable, closed})
	if err != nil {
		t.Fatal(err)
	}
	// The closed constraint forces p and q global, which must demote
	// the otherwise partitionable constraint too.
	for i, cp := range plan.Cons {
		if cp.Partitioned {
			t.Fatalf("constraint %d placement = %+v, want global", i, cp)
		}
	}
	for _, rel := range []string{"p", "q"} {
		if rp := plan.Rels[rel]; rp.Partitioned {
			t.Fatalf("%s placement = %+v, want global", rel, rp)
		}
	}
}

func TestAnalyzeColumnConflictBetweenConstraints(t *testing.T) {
	s := testSchema(t)
	first := parse(t, s, "a", "r(x, y) -> not once[0,2] p(x)")  // claims r column 0
	second := parse(t, s, "b", "r(x, y) -> not once[0,2] q(y)") // needs r column 1
	plan, err := Analyze(s, []*check.Constraint{first, second})
	if err != nil {
		t.Fatal(err)
	}
	// The second constraint cannot share r's column, so it goes global,
	// r goes global, and the first constraint is demoted with it.
	for i, cp := range plan.Cons {
		if cp.Partitioned {
			t.Fatalf("constraint %d placement = %+v, want global after the column conflict", i, cp)
		}
	}
	for _, rel := range []string{"p", "q", "r"} {
		if rp := plan.Rels[rel]; rp.Partitioned {
			t.Fatalf("%s placement = %+v, want global", rel, rp)
		}
	}
}

func TestAnalyzeAtomMissingKeyGoesGlobal(t *testing.T) {
	s := testSchema(t)
	// The once-subformula reads q(0), which does not carry x: no key
	// variable reaches every atom.
	con := parse(t, s, "c", "p(x) -> not once[0,3] q(0)")
	plan, err := Analyze(s, []*check.Constraint{con})
	if err != nil {
		t.Fatal(err)
	}
	if cp := plan.Cons[0]; cp.Partitioned {
		t.Fatalf("placement = %+v, want global", cp)
	}
}
