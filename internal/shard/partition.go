// Package shard scales checking past one state's lock: a Router fronts
// N independent engines, hash-partitions relation state by a
// per-relation partition column inferred from constraint join keys, and
// runs shard commits concurrently.
//
// The results are exact, never approximate. A constraint is installed
// on every shard only when the static analysis in this file proves that
// each of its violation witnesses is derivable from one shard's slice
// of the database alone; every other constraint falls back to a
// designated global shard whose relations are never partitioned. The
// analysis (Analyze) is conservative: when in doubt, a constraint and
// the relations it reads go global, which costs throughput but never
// correctness.
//
// Partitionability rule. A constraint C with free variables Vars is
// partitionable by v ∈ Vars when
//
//  1. v appears as a direct argument of every relation atom in C's
//     denial kernel, and
//  2. v is free in every temporal subformula of the denial (read off
//     the compiled schedule via core.Checker.ScheduleCosts), and
//  3. every relation C reads can be assigned a single partition column
//     that carries v in all of C's atoms — consistently with the
//     columns other partitionable constraints already claimed.
//
// Why this is exact: the denial is range-restricted (check.Parse
// enforces safety), so in any witness binding every quantified variable
// is bound by a positive atom of the denial. Fix a witness with key
// value v*. By (1) every tuple the witness touches carries v* in its
// relation's partition column, so hash routing places all of them on
// the one shard owning v*. By (2) the auxiliary nodes tracking the
// witness's temporal history are keyed by bindings that include v, so
// that shard's aux state for v* is exactly the unsharded aux state
// restricted to v* — provided every shard steps at every commit
// timestamp (the Router commits an empty sub-transaction to shards the
// split leaves empty, so window arithmetic over timestamps agrees
// everywhere). Hence the owning shard reports the witness and no other
// shard can (its atoms over v* are empty there). Closed constraints
// (no free variables) are never partitionable: their empty witness
// binding would be reported once per shard.
//
// Global fallback closure. A global constraint evaluates against its
// relations in full, so those relations must live whole on the global
// shard; any partitionable constraint reading such a relation would
// then see no tuples on the other shards, so it is demoted too.
// Analyze iterates this demotion to a fixpoint (the global set only
// grows, so it terminates).
package shard

import (
	"fmt"
	"sort"

	"rtic/internal/check"
	"rtic/internal/core"
	"rtic/internal/mtl"
	"rtic/internal/schema"
)

// GlobalShard is the shard index that holds unpartitionable state:
// relations read by global constraints and zero-arity relations. It
// also owns partitioned tuples whose key hashes to it.
const GlobalShard = 0

// RelPlacement says where one relation's tuples live.
type RelPlacement struct {
	// Partitioned relations are hash-routed by Column; the rest are
	// pinned whole to the global shard.
	Partitioned bool
	Column      int
}

// ConPlacement says where one constraint is installed.
type ConPlacement struct {
	// Partitioned constraints run on every shard, keyed by KeyVar;
	// the rest run on the global shard only, with Reason recording why
	// the analysis demoted them.
	Partitioned bool
	KeyVar      string
	Reason      string
}

// Plan is the output of the static partitionability analysis: a
// placement for every relation in the schema and every installed
// constraint (in installation order).
type Plan struct {
	Rels map[string]RelPlacement
	Cons []ConPlacement
}

// conFacts caches what the analysis needs to know about one constraint:
// the relations its denial reads and its viable partition keys.
type conFacts struct {
	rels  []string // sorted, deduplicated
	cands []candidate
}

// candidate is one viable partition key for a constraint: the variable
// and, per relation, the columns that carry it in every atom of that
// relation (sorted ascending).
type candidate struct {
	v    string
	cols map[string][]int
}

// Analyze computes the shard plan for cons over s. Constraints that
// cannot be partitioned are placed on the global shard with a reason;
// Analyze itself only fails on inputs the engines would reject anyway.
func Analyze(s *schema.Schema, cons []*check.Constraint) (*Plan, error) {
	facts := make([]conFacts, len(cons))
	reasons := make([]string, len(cons)) // non-empty = forced global
	for i, con := range cons {
		f, reason, err := factsFor(s, con)
		if err != nil {
			return nil, err
		}
		facts[i] = f
		reasons[i] = reason
	}

	// Fixpoint: fit constraints greedily in installation order against
	// the columns already claimed; a constraint that cannot fit goes
	// global, its relations go global, and the pass restarts so earlier
	// fits are re-checked against the grown global set.
	globalRels := make(map[string]bool)
	var relCol map[string]int
	keys := make([]string, len(cons))
	for {
		relCol = make(map[string]int)
		for i := range keys {
			keys[i] = ""
		}
		for i := range cons {
			if reasons[i] != "" {
				for _, r := range facts[i].rels {
					globalRels[r] = true
				}
			}
		}
		demoted := false
		for i := range cons {
			if reasons[i] != "" {
				continue
			}
			key, ok := fit(facts[i], relCol, globalRels)
			if !ok {
				reasons[i] = "no partition column consistent with the other constraints"
				demoted = true
				break
			}
			keys[i] = key
		}
		if !demoted {
			break
		}
	}

	plan := &Plan{Rels: make(map[string]RelPlacement), Cons: make([]ConPlacement, len(cons))}
	for i := range cons {
		if reasons[i] != "" {
			plan.Cons[i] = ConPlacement{Reason: reasons[i]}
		} else {
			plan.Cons[i] = ConPlacement{Partitioned: true, KeyVar: keys[i]}
		}
	}
	for _, name := range s.Names() {
		def, _ := s.Lookup(name)
		switch col, claimed := relCol[name]; {
		case globalRels[name]:
			plan.Rels[name] = RelPlacement{}
		case claimed:
			plan.Rels[name] = RelPlacement{Partitioned: true, Column: col}
		case def.Arity >= 1:
			// Read by no installed constraint: spread it for write
			// throughput; column 0 is as good as any.
			plan.Rels[name] = RelPlacement{Partitioned: true, Column: 0}
		default:
			plan.Rels[name] = RelPlacement{}
		}
	}
	return plan, nil
}

// factsFor gathers one constraint's relations and candidate keys. A
// constraint with no candidates comes back with a demotion reason.
func factsFor(s *schema.Schema, con *check.Constraint) (conFacts, string, error) {
	atoms := collectAtoms(con.Denial)
	relSet := make(map[string]bool)
	for _, a := range atoms {
		relSet[a.Rel] = true
	}
	f := conFacts{rels: sortedKeys(relSet)}
	if len(con.Vars) == 0 {
		return f, "closed constraint: its single witness cannot be owned by one key", nil
	}
	if len(atoms) == 0 {
		return f, "denial reads no relations", nil
	}

	// The compiled schedule tells us which temporal subformulas the
	// engine will track; a viable key must be free in all of them so
	// each shard's auxiliary state stays a clean restriction of the
	// unsharded one.
	probe := core.New(s)
	if err := probe.AddConstraint(con); err != nil {
		return f, fmt.Sprintf("engine rejects the denial: %v", err), nil
	}
	temporal := probe.ScheduleCosts()

vars:
	for _, v := range con.Vars {
		for _, nc := range temporal {
			if !containsString(mtl.FreeVars(nc.Node), v) {
				continue vars
			}
		}
		cols := make(map[string][]int)
		for _, a := range atoms {
			ps := argPositions(a, v)
			if len(ps) == 0 {
				continue vars
			}
			if prev, seen := cols[a.Rel]; seen {
				ps = intersectInts(prev, ps)
				if len(ps) == 0 {
					continue vars
				}
			}
			cols[a.Rel] = ps
		}
		f.cands = append(f.cands, candidate{v: v, cols: cols})
	}
	if len(f.cands) == 0 {
		return f, "no variable appears in every atom and every temporal subformula", nil
	}
	return f, "", nil
}

// fit tries each candidate key in order and claims partition columns
// for the constraint's relations, honouring columns already claimed by
// earlier constraints and refusing relations already forced global.
func fit(f conFacts, relCol map[string]int, globalRels map[string]bool) (string, bool) {
	for _, cand := range f.cands {
		claim := make(map[string]int, len(cand.cols))
		ok := true
		for _, rel := range sortedKeys2(cand.cols) {
			if globalRels[rel] {
				ok = false
				break
			}
			ps := cand.cols[rel]
			if c, claimed := relCol[rel]; claimed {
				if !containsInt(ps, c) {
					ok = false
					break
				}
				claim[rel] = c
			} else {
				claim[rel] = ps[0]
			}
		}
		if ok {
			for rel, c := range claim {
				relCol[rel] = c
			}
			return cand.v, true
		}
	}
	return "", false
}

// collectAtoms returns every relation atom in f.
func collectAtoms(f mtl.Formula) []*mtl.Atom {
	var out []*mtl.Atom
	mtl.Walk(f, func(n mtl.Formula) {
		if a, ok := n.(*mtl.Atom); ok {
			out = append(out, a)
		}
	})
	return out
}

// argPositions returns the argument positions of a that are the
// variable v, sorted ascending.
func argPositions(a *mtl.Atom, v string) []int {
	var out []int
	for i, t := range a.Args {
		if vr, ok := t.(mtl.Var); ok && vr.Name == v {
			out = append(out, i)
		}
	}
	return out
}

func containsString(xs []string, v string) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

func intersectInts(a, b []int) []int {
	var out []int
	for _, x := range a {
		if containsInt(b, x) {
			out = append(out, x)
		}
	}
	return out
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedKeys2(m map[string][]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
