package shard

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"sync"
	"time"

	"rtic/internal/active"
	"rtic/internal/check"
	"rtic/internal/core"
	"rtic/internal/engine"
	"rtic/internal/naive"
	"rtic/internal/obs"
	"rtic/internal/schema"
	"rtic/internal/storage"
	"rtic/internal/tuple"
	"rtic/internal/value"
)

// Factory builds one shard's engine; the Router calls it N times at the
// first commit. Every engine must be built over the same schema and
// must start empty.
type Factory func() engine.Engine

// Router implements engine.Engine over N shard engines. Constraints
// are collected up front; the first Step seals the router: it builds
// the engines, installs each constraint according to the current Plan
// (partitionable constraints on every shard, the rest on the global
// shard), and from then on splits every transaction by the per-relation
// partition columns and commits the sub-transactions concurrently.
//
// Every shard steps at every commit timestamp — shards the split
// leaves empty receive an empty sub-transaction — so temporal window
// arithmetic agrees across shards and each shard's auxiliary state is
// exactly the unsharded state restricted to the keys it owns.
//
// Router is not safe for concurrent Steps (neither are the engines it
// fronts); the monitor serializes commits above it.
type Router struct {
	schema  *schema.Schema
	n       int
	factory Factory
	obs     *obs.Observer

	cons  []*check.Constraint
	names map[string]bool
	plan  *Plan

	engines  []engine.Engine
	conIndex map[string]int
	started  bool
	now      uint64
	index    int
	broken   error // sticky: a shard failed mid-commit, state may have diverged
}

// New returns a router over shards engines built by factory. One shard
// is legal (and bit-identical to the engine the factory builds).
func New(s *schema.Schema, shards int, factory Factory) (*Router, error) {
	if s == nil {
		return nil, fmt.Errorf("shard: nil schema")
	}
	if shards < 1 {
		return nil, fmt.Errorf("shard: shard count %d, want at least 1", shards)
	}
	if factory == nil {
		return nil, fmt.Errorf("shard: nil engine factory")
	}
	plan, err := Analyze(s, nil)
	if err != nil {
		return nil, err
	}
	return &Router{schema: s, n: shards, factory: factory, names: make(map[string]bool), plan: plan}, nil
}

// NewMode is New with the factory derived from an engine mode, the
// shape the public checker and the monitor use. Parallelism sets each
// shard engine's commit-pipeline width in Incremental mode (values
// below 1 mean 1: with shard concurrency on top, per-shard pipelines
// default to sequential).
func NewMode(s *schema.Schema, shards int, mode engine.Mode, parallelism int) (*Router, error) {
	if parallelism < 1 {
		parallelism = 1
	}
	var factory Factory
	switch mode {
	case engine.Incremental:
		factory = func() engine.Engine { return core.New(s, core.WithParallelism(parallelism)) }
	case engine.Naive:
		factory = func() engine.Engine { return naive.New(s) }
	case engine.ActiveRules:
		factory = func() engine.Engine { return active.New(s) }
	default:
		return nil, fmt.Errorf("shard: unknown engine mode %v", mode)
	}
	return New(s, shards, factory)
}

// Shards returns the configured shard count.
func (r *Router) Shards() int { return r.n }

// Plan returns the current shard plan. It is recomputed at every
// AddConstraint and final once the first commit seals the router;
// callers must not mutate it.
func (r *Router) Plan() *Plan { return r.plan }

// AddConstraint validates con against a probe engine (so mode-specific
// rejections surface here, not at the first commit), re-runs the
// partitionability analysis over all installed constraints, and defers
// installation to the seal: a later constraint may still demote an
// earlier one or move a partition column.
func (r *Router) AddConstraint(con *check.Constraint) error {
	if r.engines != nil {
		return fmt.Errorf("shard: cannot add constraints after the first commit")
	}
	if con == nil {
		return fmt.Errorf("shard: nil constraint")
	}
	if r.names[con.Name] {
		return fmt.Errorf("shard: duplicate constraint %q", con.Name)
	}
	if err := r.factory().AddConstraint(con); err != nil {
		return err
	}
	plan, err := Analyze(r.schema, append(r.cons[:len(r.cons):len(r.cons)], con))
	if err != nil {
		return err
	}
	r.cons = append(r.cons, con)
	r.names[con.Name] = true
	r.plan = plan
	return nil
}

// SetObserver attaches (or detaches, with nil) instrumentation. The
// shard engines themselves stay unobserved — N engines reporting into
// the one engine section would double-count commits — the router
// records commit, violation and per-shard routing metrics itself.
func (r *Router) SetObserver(o *obs.Observer) {
	r.obs = o
	if m, _ := o.Parts(); m != nil {
		m.Shards.Set(int64(r.n))
		r.syncPlanMetrics(m)
	}
}

// syncPlanMetrics republishes the plan-derived gauges and pre-registers
// the per-shard and per-constraint series so a scrape shows them at
// zero.
func (r *Router) syncPlanMetrics(m *obs.Metrics) {
	global := 0
	for _, cp := range r.plan.Cons {
		if !cp.Partitioned {
			global++
		}
	}
	m.ShardGlobalConstraints.Set(int64(global))
	for i := 0; i < r.n; i++ {
		label := strconv.Itoa(i)
		m.ShardCommits.With(label)
		m.ShardOpsRouted.With(label)
		m.ShardCommitSeconds.With(label)
	}
	for _, con := range r.cons {
		m.Violations.With(con.Name)
	}
}

// seal builds the shard engines and installs the collected constraints
// according to the (now final) plan.
func (r *Router) seal() error {
	if r.engines != nil {
		return nil
	}
	engines := make([]engine.Engine, r.n)
	for i := range engines {
		engines[i] = r.factory()
		if engines[i] == nil {
			return fmt.Errorf("shard: factory returned a nil engine")
		}
	}
	for i, con := range r.cons {
		targets := engines[GlobalShard : GlobalShard+1]
		if r.plan.Cons[i].Partitioned {
			targets = engines
		}
		for _, e := range targets {
			if err := e.AddConstraint(con); err != nil {
				return fmt.Errorf("shard: installing %q: %w", con.Name, err)
			}
		}
	}
	r.conIndex = make(map[string]int, len(r.cons))
	for i, con := range r.cons {
		r.conIndex[con.Name] = i
	}
	r.engines = engines
	return nil
}

// ShardFor returns the shard owning tup in rel under the current plan.
// Tuples of unpartitioned relations, and tuples too short to carry
// their partition column, belong to the global shard.
func (r *Router) ShardFor(rel string, tup tuple.Tuple) int {
	p, ok := r.plan.Rels[rel]
	if !ok || !p.Partitioned || p.Column >= len(tup) {
		return GlobalShard
	}
	return shardOf(tup[p.Column], r.n)
}

// shardOf hashes one partition-key value onto [0, n).
func shardOf(v value.Value, n int) int {
	h := fnv.New64a()
	h.Write([]byte(v.Key()))
	return int(h.Sum64() % uint64(n))
}

// Split routes tx's operations into one sub-transaction per shard
// (empty ones included — every shard commits at every timestamp).
// Relative op order is preserved within each shard, which is enough:
// ops on the same tuple always land on the same shard.
func (r *Router) Split(tx *storage.Transaction) []*storage.Transaction {
	parts := make([]*storage.Transaction, r.n)
	for i := range parts {
		parts[i] = storage.NewTransaction()
	}
	if tx == nil {
		return parts
	}
	for _, op := range tx.Ops() {
		p := parts[r.ShardFor(op.Rel, op.Tuple)]
		if op.Insert {
			p.Insert(op.Rel, op.Tuple)
		} else {
			p.Delete(op.Rel, op.Tuple)
		}
	}
	return parts
}

// Step commits one transaction across the shards and merges their
// violation reports. Validation (schema, timestamp monotonicity)
// happens before any shard applies anything, so a rejected transaction
// leaves every shard untouched; an engine failure after that point
// latches the router broken, because the shards may have diverged.
func (r *Router) Step(t uint64, tx *storage.Transaction) ([]check.Violation, error) {
	m, tr := r.obs.Parts()
	sink := r.obs.SpanSink()
	if m == nil && tr == nil && sink == nil {
		return r.step(t, tx, nil, nil)
	}
	var span *obs.Span
	if sink != nil {
		ops := 0
		if tx != nil {
			ops = tx.Len()
		}
		span = &obs.Span{Name: obs.SpanCommit, Time: t, Start: time.Now(), Ops: ops}
	}
	start := time.Now()
	vs, err := r.step(t, tx, m, span)
	d := time.Since(start)
	if m != nil {
		if err != nil {
			m.CommitErrors.Inc()
		} else {
			m.Commits.Inc()
			m.CommitSeconds.Observe(d.Seconds())
			for _, v := range vs {
				m.Violations.With(v.Constraint).Inc()
			}
			r.refreshAuxGauges(m)
		}
	}
	if tr != nil {
		tr.Trace(obs.TraceEvent{Op: obs.OpStep, Time: t, Duration: d, Err: err})
	}
	if sink != nil {
		span.Dur = d
		span.Err = err
		sink.ObserveSpan(span)
	}
	return vs, err
}

func (r *Router) step(t uint64, tx *storage.Transaction, m *obs.Metrics, span *obs.Span) ([]check.Violation, error) {
	if r.broken != nil {
		return nil, fmt.Errorf("shard: router unusable after earlier shard failure: %w", r.broken)
	}
	if err := r.seal(); err != nil {
		return nil, err
	}

	var vs []check.Violation
	if r.n == 1 {
		// Degenerate case: the one engine sees the transaction untouched
		// (same op order, its own validation and error text) so a
		// one-shard router is bit-identical to the engine it wraps.
		var err error
		var sp *obs.Span
		vs, sp, _, err = r.stepOne(0, t, tx, m, span != nil)
		if span != nil && sp != nil {
			span.Children = append(span.Children, sp)
		}
		if err != nil {
			return nil, err
		}
		if m != nil && tx != nil && tx.Len() > 0 {
			m.ShardOpsRouted.With("0").Add(uint64(tx.Len()))
		}
	} else {
		// Validate before any shard applies anything: a rejected
		// transaction must leave every shard untouched.
		if r.started && t <= r.now {
			return nil, fmt.Errorf("core: non-increasing timestamp %d after %d", t, r.now)
		}
		if tx == nil {
			tx = storage.NewTransaction()
		}
		if err := tx.Validate(r.schema); err != nil {
			return nil, err
		}
		parts := r.Split(tx)
		if m != nil {
			for i, p := range parts {
				if n := len(p.Ops()); n > 0 {
					m.ShardOpsRouted.With(strconv.Itoa(i)).Add(uint64(n))
				}
			}
		}
		outs := make([][]check.Violation, r.n)
		errs := make([]error, r.n)
		durs := make([]time.Duration, r.n)
		sps := make([]*obs.Span, r.n)
		var wg sync.WaitGroup
		for i := range r.engines {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				outs[i], sps[i], durs[i], errs[i] = r.stepOne(i, t, parts[i], m, span != nil)
			}(i)
		}
		wg.Wait()
		if span != nil {
			for _, sp := range sps {
				if sp != nil {
					span.Children = append(span.Children, sp)
				}
			}
		}
		if m != nil {
			if skew := shardSkew(durs); skew > 0 {
				m.ShardSkew.Set(skew)
			}
		}
		for i, err := range errs {
			if err != nil {
				r.broken = fmt.Errorf("shard %d: %w", i, err)
				return nil, r.broken
			}
		}
		vs = r.merge(outs)
	}
	r.started = true
	r.now = t
	r.index++
	return vs, nil
}

// stepOne commits one shard's sub-transaction, timing it when observed.
// With wantSpan set it also returns a completed shard.commit span on
// lane i+1; the caller attaches children after the fan-in, so
// concurrent shard commits never touch the shared commit span.
func (r *Router) stepOne(i int, t uint64, tx *storage.Transaction, m *obs.Metrics, wantSpan bool) ([]check.Violation, *obs.Span, time.Duration, error) {
	if m == nil && !wantSpan {
		vs, err := r.engines[i].Step(t, tx)
		return vs, nil, 0, err
	}
	start := time.Now()
	vs, err := r.engines[i].Step(t, tx)
	d := time.Since(start)
	if m != nil && err == nil {
		label := strconv.Itoa(i)
		m.ShardCommits.With(label).Inc()
		m.ShardCommitSeconds.With(label).Observe(d.Seconds())
	}
	var sp *obs.Span
	if wantSpan {
		ops := 0
		if tx != nil {
			ops = tx.Len()
		}
		sp = &obs.Span{
			Name: obs.SpanShardCommit, Detail: strconv.Itoa(i),
			Time: t, Track: i + 1, Start: start, Dur: d, Ops: ops, Err: err,
		}
	}
	return vs, sp, d, err
}

// shardSkew is the max/min ratio of per-shard sub-commit times — the
// load-balance figure behind rtic_shard_commit_skew. Zero (unset) when
// a duration rounded to zero.
func shardSkew(durs []time.Duration) float64 {
	min, max := time.Duration(-1), time.Duration(0)
	for _, d := range durs {
		if min < 0 || d < min {
			min = d
		}
		if d > max {
			max = d
		}
	}
	if min <= 0 {
		return 0
	}
	return float64(max) / float64(min)
}

// merge flattens per-shard violation reports into one deterministic
// order: constraint installation order, then witness binding order. No
// deduplication is needed — a partitionable constraint's witness is
// derivable on exactly one shard, and global constraints run on one
// shard only.
func (r *Router) merge(outs [][]check.Violation) []check.Violation {
	var vs []check.Violation
	for _, out := range outs {
		vs = append(vs, out...)
	}
	sort.SliceStable(vs, func(i, j int) bool {
		ci, cj := r.conIndex[vs[i].Constraint], r.conIndex[vs[j].Constraint]
		if ci != cj {
			return ci < cj
		}
		return vs[i].Binding.Compare(vs[j].Binding) < 0
	})
	return vs
}

// StepBatch commits steps in order, stopping at the first error.
func (r *Router) StepBatch(steps []engine.Step) ([][]check.Violation, error) {
	return engine.SerialBatch(r.Step, steps)
}

// Now returns the timestamp of the last committed transaction.
func (r *Router) Now() uint64 { return r.now }

// Len returns the number of committed transactions.
func (r *Router) Len() int { return r.index }

// ConstraintNames returns the installed constraint names in
// installation order.
func (r *Router) ConstraintNames() []string {
	out := make([]string, len(r.cons))
	for i, con := range r.cons {
		out[i] = con.Name
	}
	return out
}

// State returns the merged current database: the union of the shards'
// base relations. The union is exact — partitioned relations are
// disjoint across shards and unpartitioned ones live on the global
// shard only. Callers must not mutate the result's tuples.
func (r *Router) State() (*storage.State, error) {
	merged := storage.NewState(r.schema)
	if r.engines == nil {
		return merged, nil
	}
	for i, e := range r.engines {
		st, err := engineState(e)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		for _, name := range r.schema.Names() {
			src, err := st.Relation(name)
			if err != nil {
				return nil, fmt.Errorf("shard %d: %w", i, err)
			}
			dst, err := merged.Relation(name)
			if err != nil {
				return nil, err
			}
			var ierr error
			src.Each(func(tp tuple.Tuple) bool {
				_, ierr = dst.Insert(tp)
				return ierr == nil
			})
			if ierr != nil {
				return nil, fmt.Errorf("shard %d: merging %s: %w", i, name, ierr)
			}
		}
	}
	return merged, nil
}

// engineState extracts the current database from one shard engine.
func engineState(e engine.Engine) (*storage.State, error) {
	switch c := e.(type) {
	case *core.Checker:
		return c.State(), nil
	case *naive.Checker:
		return c.State(), nil
	case *active.Checker:
		return c.State()
	default:
		return nil, fmt.Errorf("shard: engine %T does not expose its state", e)
	}
}

// Stats sums the incremental auxiliary-storage statistics across the
// shards (zero when the engines are not core checkers). Entries and
// Timestamps are exact — each tracked binding lives on exactly one
// shard — while Nodes and Bytes count the per-shard copies of
// partitionable constraints' node structures.
func (r *Router) Stats() core.Stats {
	var total core.Stats
	for _, e := range r.engines {
		if c, ok := e.(*core.Checker); ok {
			st := c.Stats()
			total.Nodes += st.Nodes
			total.Entries += st.Entries
			total.Timestamps += st.Timestamps
			total.Bytes += st.Bytes
		}
	}
	return total
}

// refreshAuxGauges republishes the summed auxiliary-storage gauges.
func (r *Router) refreshAuxGauges(m *obs.Metrics) {
	st := r.Stats()
	m.AuxNodes.Set(int64(st.Nodes))
	m.AuxEntries.Set(int64(st.Entries))
	m.AuxTimestamps.Set(int64(st.Timestamps))
	m.AuxBytes.Set(int64(st.Bytes))
}
