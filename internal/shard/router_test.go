package shard

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"

	"rtic/internal/active"
	"rtic/internal/check"
	"rtic/internal/core"
	"rtic/internal/engine"
	"rtic/internal/naive"
	"rtic/internal/obs"
	"rtic/internal/schema"
	"rtic/internal/storage"
	"rtic/internal/tuple"
)

// canon renders violations in a canonical order for cross-engine
// comparison (within one constraint the engines report map-ordered
// witnesses).
func canon(vs []check.Violation) []string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = v.Constraint + "|" + fmt.Sprint(v.Index) + "|" + fmt.Sprint(v.Time) + "|" + v.Binding.Key()
	}
	sort.Strings(out)
	return out
}

func coreFactory(s *schema.Schema) Factory {
	return func() engine.Engine { return core.New(s) }
}

// randomTx mirrors the equivalence suite's generator: a few inserts
// and deletes over p/1, q/1, r/2 with a small value domain.
func randomTx(rng *rand.Rand) *storage.Transaction {
	tx := storage.NewTransaction()
	n := 1 + rng.Intn(4)
	for i := 0; i < n; i++ {
		v := int64(rng.Intn(6))
		w := int64(rng.Intn(6))
		rel := []string{"p", "q", "r"}[rng.Intn(3)]
		tup := tuple.Ints(v)
		if rel == "r" {
			tup = tuple.Ints(v, w)
		}
		if rng.Intn(4) == 0 {
			tx.Delete(rel, tup)
		} else {
			tx.Insert(rel, tup)
		}
	}
	return tx
}

var routerConstraintPool = []string{
	"p(x) -> not once[0,3] q(x)",
	"q(x) -> not prev[1,2] p(x)",
	"r(x, y) -> not once[0,4] q(y)",
	"p(x) -> not (once[0,5] q(x) and not r(x, x))",
	"r(x, y) -> not once[0,2] r(y, x)", // unpartitionable self-join
	"p(0) -> not once[0,3] q(0)",       // closed: global fallback
}

// TestRouterMatchesUnsharded is the in-package differential check: the
// same constraints and trace through a plain core checker and routers
// at several shard counts must agree on every step's violations, the
// final database, and the summed auxiliary entry/timestamp counts.
func TestRouterMatchesUnsharded(t *testing.T) {
	s := testSchema(t)
	for seed := int64(0); seed < 8; seed++ {
		for _, srcs := range [][]string{
			routerConstraintPool[:4],  // all partitionable
			routerConstraintPool[4:],  // all global
			routerConstraintPool[1:6], // mixed
		} {
			ref := core.New(s)
			var cons []*check.Constraint
			for i, src := range srcs {
				con := parse(t, s, fmt.Sprintf("c%d", i), src)
				cons = append(cons, con)
				if err := ref.AddConstraint(con); err != nil {
					t.Fatal(err)
				}
			}
			routers := make([]*Router, 0, 3)
			for _, n := range []int{1, 2, 8} {
				r, err := New(s, n, coreFactory(s))
				if err != nil {
					t.Fatal(err)
				}
				for _, con := range cons {
					if err := r.AddConstraint(con); err != nil {
						t.Fatal(err)
					}
				}
				routers = append(routers, r)
			}
			rng := rand.New(rand.NewSource(seed))
			tme := uint64(0)
			for step := 0; step < 30; step++ {
				tme += uint64(1 + rng.Intn(3))
				tx := randomTx(rng)
				want, err := ref.Step(tme, tx.Clone())
				if err != nil {
					t.Fatal(err)
				}
				for _, r := range routers {
					got, err := r.Step(tme, tx.Clone())
					if err != nil {
						t.Fatalf("seed %d shards %d step %d: %v", seed, r.Shards(), step, err)
					}
					if !reflect.DeepEqual(canon(got), canon(want)) {
						t.Fatalf("seed %d shards %d step %d: violations diverge\ngot  %v\nwant %v",
							seed, r.Shards(), step, canon(got), canon(want))
					}
				}
			}
			for _, r := range routers {
				st, err := r.State()
				if err != nil {
					t.Fatal(err)
				}
				if !st.Equal(ref.State()) {
					t.Fatalf("seed %d shards %d: final states diverge", seed, r.Shards())
				}
				rs, ws := r.Stats(), ref.Stats()
				if rs.Entries != ws.Entries || rs.Timestamps != ws.Timestamps {
					t.Fatalf("seed %d shards %d: aux sums diverge: entries %d/%d timestamps %d/%d",
						seed, r.Shards(), rs.Entries, ws.Entries, rs.Timestamps, ws.Timestamps)
				}
			}
		}
	}
}

// sortedVs clones vs sorted by (constraint, binding); the engines
// report witnesses within one constraint in map order, so exact
// comparison must canonicalize that one degree of freedom.
func sortedVs(vs []check.Violation) []check.Violation {
	out := append([]check.Violation(nil), vs...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Constraint != out[j].Constraint {
			return out[i].Constraint < out[j].Constraint
		}
		return out[i].Binding.Compare(out[j].Binding) < 0
	})
	return out
}

// TestRouterSingleShardBitIdentical pins the degenerate case: one
// shard must reproduce the wrapped engine exactly — full violation
// structs (modulo the engine's own map-ordered witness iteration) and
// the engine's own error text.
func TestRouterSingleShardBitIdentical(t *testing.T) {
	s := testSchema(t)
	ref := core.New(s)
	r, err := New(s, 1, coreFactory(s))
	if err != nil {
		t.Fatal(err)
	}
	for i, src := range routerConstraintPool {
		con := parse(t, s, fmt.Sprintf("c%d", i), src)
		if err := ref.AddConstraint(con); err != nil {
			t.Fatal(err)
		}
		if err := r.AddConstraint(con); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(7))
	tme := uint64(0)
	for step := 0; step < 40; step++ {
		tme += uint64(1 + rng.Intn(2))
		tx := randomTx(rng)
		want, werr := ref.Step(tme, tx.Clone())
		got, gerr := r.Step(tme, tx.Clone())
		if (werr == nil) != (gerr == nil) {
			t.Fatalf("step %d: error mismatch: %v vs %v", step, gerr, werr)
		}
		if !reflect.DeepEqual(sortedVs(got), sortedVs(want)) {
			t.Fatalf("step %d: violation slices differ\ngot  %v\nwant %v", step, got, want)
		}
	}
	// Stale timestamps and unknown relations must fail with the
	// engine's own error text.
	_, werr := ref.Step(1, storage.NewTransaction())
	_, gerr := r.Step(1, storage.NewTransaction())
	if werr == nil || gerr == nil || gerr.Error() != werr.Error() {
		t.Fatalf("stale-timestamp errors differ: %q vs %q", gerr, werr)
	}
	bad := storage.NewTransaction().Insert("nosuch", tuple.Ints(1))
	_, werr = ref.Step(tme+1, bad.Clone())
	_, gerr = r.Step(tme+1, bad.Clone())
	if werr == nil || gerr == nil || gerr.Error() != werr.Error() {
		t.Fatalf("unknown-relation errors differ: %q vs %q", gerr, werr)
	}
}

func TestRouterEdgeRouting(t *testing.T) {
	s := testSchema(t)
	r, err := New(s, 4, coreFactory(s))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.AddConstraint(parse(t, s, "c", "p(x) -> not once[0,3] q(x)")); err != nil {
		t.Fatal(err)
	}

	// A tuple too short to carry its partition column, and a relation
	// the plan does not know, both fall back to the global shard.
	if got := r.ShardFor("p", tuple.Of()); got != GlobalShard {
		t.Fatalf("ShardFor(short tuple) = %d, want global shard %d", got, GlobalShard)
	}
	if got := r.ShardFor("nosuch", tuple.Ints(1)); got != GlobalShard {
		t.Fatalf("ShardFor(unknown relation) = %d, want global shard %d", got, GlobalShard)
	}

	// A nil transaction is an empty commit on every shard.
	if vs, err := r.Step(1, nil); err != nil || len(vs) != 0 {
		t.Fatalf("Step(nil tx) = %v, %v", vs, err)
	}

	// Deleting a never-inserted tuple routes and commits cleanly.
	del := storage.NewTransaction().Delete("p", tuple.Ints(99)).Delete("r", tuple.Ints(1, 2))
	if vs, err := r.Step(2, del); err != nil || len(vs) != 0 {
		t.Fatalf("Step(delete absent) = %v, %v", vs, err)
	}
	st, err := r.State()
	if err != nil {
		t.Fatal(err)
	}
	if !st.Equal(storage.NewState(s)) {
		t.Fatal("state not empty after deleting absent tuples")
	}

	// The split covers every op exactly once and routes each tuple to
	// its ShardFor shard.
	tx := storage.NewTransaction()
	for i := int64(0); i < 16; i++ {
		tx.Insert("p", tuple.Ints(i))
	}
	parts := r.Split(tx)
	total := 0
	for i, p := range parts {
		for _, op := range p.Ops() {
			if want := r.ShardFor(op.Rel, op.Tuple); want != i {
				t.Fatalf("op %v landed on shard %d, want %d", op, i, want)
			}
		}
		total += p.Len()
	}
	if total != tx.Len() {
		t.Fatalf("split covers %d ops, want %d", total, tx.Len())
	}
}

func TestRouterSealsAndRejects(t *testing.T) {
	s := testSchema(t)
	if _, err := New(s, 0, coreFactory(s)); err == nil {
		t.Fatal("New with 0 shards succeeded")
	}
	if _, err := New(nil, 2, coreFactory(s)); err == nil {
		t.Fatal("New with nil schema succeeded")
	}
	if _, err := New(s, 2, nil); err == nil {
		t.Fatal("New with nil factory succeeded")
	}
	r, err := New(s, 2, coreFactory(s))
	if err != nil {
		t.Fatal(err)
	}
	con := parse(t, s, "c", "p(x) -> not q(x)")
	if err := r.AddConstraint(con); err != nil {
		t.Fatal(err)
	}
	if err := r.AddConstraint(con); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate AddConstraint: %v", err)
	}
	if _, err := r.Step(1, storage.NewTransaction().Insert("p", tuple.Ints(1))); err != nil {
		t.Fatal(err)
	}
	if err := r.AddConstraint(parse(t, s, "late", "q(x) -> not p(x)")); err == nil {
		t.Fatal("AddConstraint after the first commit succeeded")
	}
	if got := r.Len(); got != 1 {
		t.Fatalf("Len = %d, want 1", got)
	}
	if got := r.Now(); got != 1 {
		t.Fatalf("Now = %d, want 1", got)
	}
	if got := r.ConstraintNames(); len(got) != 1 || got[0] != "c" {
		t.Fatalf("ConstraintNames = %v", got)
	}
}

func TestRouterObserverMetrics(t *testing.T) {
	s := testSchema(t)
	r, err := New(s, 3, coreFactory(s))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.AddConstraint(parse(t, s, "part", "p(x) -> not once[0,3] q(x)")); err != nil {
		t.Fatal(err)
	}
	// Closed, so it goes global — but it only touches r, leaving the
	// partitionable constraint over p/q alone.
	if err := r.AddConstraint(parse(t, s, "glob", "r(0, 0) -> not once[0,3] r(0, 1)")); err != nil {
		t.Fatal(err)
	}
	m := obs.NewMetrics(obs.NewRegistry())
	r.SetObserver(&obs.Observer{Metrics: m})
	if got := m.Shards.Value(); got != 3 {
		t.Fatalf("rtic_shards = %d, want 3", got)
	}
	if got := m.ShardGlobalConstraints.Value(); got != 1 {
		t.Fatalf("global fallback gauge = %d, want 1", got)
	}
	tx := storage.NewTransaction().Insert("q", tuple.Ints(1)).Insert("q", tuple.Ints(2))
	if _, err := r.Step(1, tx); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Step(2, storage.NewTransaction().Insert("p", tuple.Ints(1))); err != nil {
		t.Fatal(err)
	}
	if got := m.Commits.Value(); got != 2 {
		t.Fatalf("rtic_commits_total = %d, want 2", got)
	}
	var shardCommits, routed uint64
	for i := 0; i < 3; i++ {
		shardCommits += m.ShardCommits.With(fmt.Sprint(i)).Value()
		routed += m.ShardOpsRouted.With(fmt.Sprint(i)).Value()
	}
	if shardCommits != 6 { // every shard steps at every commit
		t.Fatalf("shard commits = %d, want 6", shardCommits)
	}
	if routed != 3 {
		t.Fatalf("ops routed = %d, want 3", routed)
	}
	if got := m.Violations.With("part").Value(); got != 1 {
		t.Fatalf("violations{part} = %d, want 1", got)
	}
}

// TestRouterModes runs the naive and active engines behind the router
// against their unsharded selves.
func TestRouterModes(t *testing.T) {
	s := testSchema(t)
	srcs := []string{"p(x) -> not once[0,3] q(x)", "r(x, y) -> not once[0,2] r(y, x)"}
	for _, mode := range []engine.Mode{engine.Naive, engine.ActiveRules} {
		var ref engine.Engine
		if mode == engine.Naive {
			ref = naive.New(s)
		} else {
			ref = active.New(s)
		}
		r, err := NewMode(s, 2, mode, 1)
		if err != nil {
			t.Fatal(err)
		}
		for i, src := range srcs {
			con := parse(t, s, fmt.Sprintf("c%d", i), src)
			if err := ref.AddConstraint(con); err != nil {
				t.Fatal(err)
			}
			if err := r.AddConstraint(con); err != nil {
				t.Fatal(err)
			}
		}
		rng := rand.New(rand.NewSource(11))
		tme := uint64(0)
		for step := 0; step < 25; step++ {
			tme += uint64(1 + rng.Intn(2))
			tx := randomTx(rng)
			want, err := ref.Step(tme, tx.Clone())
			if err != nil {
				t.Fatal(err)
			}
			got, err := r.Step(tme, tx.Clone())
			if err != nil {
				t.Fatalf("mode %v step %d: %v", mode, step, err)
			}
			if !reflect.DeepEqual(canon(got), canon(want)) {
				t.Fatalf("mode %v step %d: violations diverge\ngot  %v\nwant %v", mode, step, canon(got), canon(want))
			}
		}
	}
}

// TestRouterEmptyShardStepsKeepWindowsExact is the counterexample that
// motivated committing empty sub-transactions: if a shard skipped the
// timestamps it holds no data for, its window arithmetic would drift
// from the unsharded engine's.
func TestRouterEmptyShardStepsKeepWindowsExact(t *testing.T) {
	s := testSchema(t)
	src := "p(x) -> not once[0,3] q(x)"
	ref := core.New(s)
	r, err := New(s, 8, coreFactory(s))
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.AddConstraint(parse(t, s, "c", src)); err != nil {
		t.Fatal(err)
	}
	if err := r.AddConstraint(parse(t, s, "c", src)); err != nil {
		t.Fatal(err)
	}
	steps := []struct {
		t  uint64
		tx *storage.Transaction
	}{
		{1, storage.NewTransaction().Insert("q", tuple.Ints(1))},
		{2, storage.NewTransaction().Insert("q", tuple.Ints(2))}, // other shard traffic
		{3, storage.NewTransaction()},
		{6, storage.NewTransaction().Insert("p", tuple.Ints(1))}, // q(1) at t=1 is outside [3,6]
		{7, storage.NewTransaction().Insert("q", tuple.Ints(1))},
		{8, storage.NewTransaction().Insert("p", tuple.Ints(1)).Delete("p", tuple.Ints(1)).Insert("p", tuple.Ints(1))},
	}
	for _, st := range steps {
		want, err := ref.Step(st.t, st.tx.Clone())
		if err != nil {
			t.Fatal(err)
		}
		got, err := r.Step(st.t, st.tx.Clone())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(canon(got), canon(want)) {
			t.Fatalf("t=%d: violations diverge\ngot  %v\nwant %v", st.t, canon(got), canon(want))
		}
	}
}
