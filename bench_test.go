// Benchmarks regenerating the reconstructed evaluation, one per table
// and figure (see DESIGN.md §3 and EXPERIMENTS.md). Each benchmark
// replays a generated history through the relevant checker(s) and
// reports ns/tx — the per-transaction checking cost — alongside the
// standard ns/op of one whole replay.
//
// Run all of them with:
//
//	go test -bench=. -benchmem
package rtic

import (
	"fmt"
	"testing"

	"rtic/internal/active"
	"rtic/internal/check"
	"rtic/internal/core"
	"rtic/internal/naive"
	"rtic/internal/storage"
	"rtic/internal/workload"
)

type benchEngine interface {
	AddConstraint(*check.Constraint) error
	Step(uint64, *storage.Transaction) ([]check.Violation, error)
}

func newEngine(b *testing.B, kind string, h workload.History) benchEngine {
	b.Helper()
	var eng benchEngine
	switch kind {
	case "incremental":
		eng = core.New(h.Schema)
	case "naive":
		eng = naive.New(h.Schema)
	case "active":
		eng = active.New(h.Schema)
	default:
		b.Fatalf("unknown engine %q", kind)
	}
	for _, cs := range h.Constraints {
		con, err := check.Parse(cs.Name, cs.Source, h.Schema)
		if err != nil {
			b.Fatal(err)
		}
		if err := eng.AddConstraint(con); err != nil {
			b.Fatal(err)
		}
	}
	return eng
}

// benchReplay runs b.N full replays of h on fresh engines and reports
// the per-transaction cost.
func benchReplay(b *testing.B, kind string, h workload.History) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := newEngine(b, kind, h)
		for _, s := range h.Steps {
			if _, err := eng.Step(s.Time, s.Tx); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	if len(h.Steps) > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(h.Steps)), "ns/tx")
	}
}

// unboundedHistory is the Table 1 workload: an unbounded-window
// constraint, where the naive evaluator must walk the whole history.
func unboundedHistory(n int) workload.History {
	h := workload.Uniform(workload.UniformConfig{Steps: n, Seed: 42, OpsPerTx: 1, Domain: 8})
	h.Constraints = []workload.ConstraintSpec{{Name: "c", Source: "p(x) -> not once q(x)"}}
	return h
}

// windowHistory is the bounded-window workload used by the space and
// update-rate experiments.
func windowHistory(n, ops int, window string) workload.History {
	h := workload.Uniform(workload.UniformConfig{Steps: n, Seed: 43, OpsPerTx: ops, Domain: 8})
	h.Constraints = []workload.ConstraintSpec{
		{Name: "c", Source: fmt.Sprintf("p(x) -> not once[0,%s] q(x)", window)},
	}
	return h
}

// BenchmarkTable1HistoryLength — per-transaction cost vs history length
// (unbounded window). Expected shape: incremental ns/tx flat across n,
// naive ns/tx growing with n.
func BenchmarkTable1HistoryLength(b *testing.B) {
	for _, n := range []int{250, 500, 1000} {
		h := unboundedHistory(n)
		for _, kind := range []string{"incremental", "naive"} {
			b.Run(fmt.Sprintf("%s/n=%d", kind, n), func(b *testing.B) {
				benchReplay(b, kind, h)
			})
		}
	}
}

// BenchmarkFigure1Space — space vs history length (window [0,100]).
// Reported as aux_bytes (incremental) and hist_bytes (naive) metrics.
func BenchmarkFigure1Space(b *testing.B) {
	for _, n := range []int{500, 1000, 2000} {
		h := windowHistory(n, 1, "100")
		b.Run(fmt.Sprintf("incremental/n=%d", n), func(b *testing.B) {
			var bytes int
			for i := 0; i < b.N; i++ {
				eng := core.New(h.Schema)
				con, _ := check.Parse("c", h.Constraints[0].Source, h.Schema)
				if err := eng.AddConstraint(con); err != nil {
					b.Fatal(err)
				}
				for _, s := range h.Steps {
					if _, err := eng.Step(s.Time, s.Tx); err != nil {
						b.Fatal(err)
					}
				}
				bytes = eng.Stats().Bytes
			}
			b.ReportMetric(float64(bytes), "aux_bytes")
		})
		b.Run(fmt.Sprintf("naive/n=%d", n), func(b *testing.B) {
			var bytes int
			for i := 0; i < b.N; i++ {
				eng := naive.New(h.Schema)
				con, _ := check.Parse("c", h.Constraints[0].Source, h.Schema)
				if err := eng.AddConstraint(con); err != nil {
					b.Fatal(err)
				}
				for _, s := range h.Steps {
					if _, err := eng.Step(s.Time, s.Tx); err != nil {
						b.Fatal(err)
					}
				}
				bytes = eng.HistoryBytes()
			}
			b.ReportMetric(float64(bytes), "hist_bytes")
		})
	}
}

// BenchmarkTable2Window — incremental cost vs metric window size.
func BenchmarkTable2Window(b *testing.B) {
	for _, w := range []string{"10", "100", "1000"} {
		h := windowHistory(800, 1, w)
		b.Run("window="+w, func(b *testing.B) {
			benchReplay(b, "incremental", h)
		})
	}
	b.Run("window=inf", func(b *testing.B) {
		benchReplay(b, "incremental", unboundedHistory(800))
	})
}

// BenchmarkTable3UpdateRate — cost vs transaction size.
func BenchmarkTable3UpdateRate(b *testing.B) {
	for _, ops := range []int{1, 4, 16} {
		h := windowHistory(400, ops, "100")
		for _, kind := range []string{"incremental", "naive"} {
			b.Run(fmt.Sprintf("%s/ops=%d", kind, ops), func(b *testing.B) {
				benchReplay(b, kind, h)
			})
		}
	}
}

// BenchmarkTable4Depth — cost vs temporal nesting depth.
func BenchmarkTable4Depth(b *testing.B) {
	constraints := []string{
		"p(x) -> not once[0,50] q(x)",
		"p(x) -> not once[0,50] prev q(x)",
		"p(x) -> not once[0,50] prev once[0,50] q(x)",
		"p(x) -> not once[0,50] prev once[0,50] prev q(x)",
	}
	for d, src := range constraints {
		h := workload.Uniform(workload.UniformConfig{Steps: 400, Seed: 46, OpsPerTx: 1, Domain: 8})
		h.Constraints = []workload.ConstraintSpec{{Name: "c", Source: src}}
		for _, kind := range []string{"incremental", "naive"} {
			b.Run(fmt.Sprintf("%s/depth=%d", kind, d+1), func(b *testing.B) {
				benchReplay(b, kind, h)
			})
		}
	}
}

// BenchmarkFigure2Crossover — total cost on short histories.
func BenchmarkFigure2Crossover(b *testing.B) {
	for _, n := range []int{4, 32, 256} {
		h := unboundedHistory(n)
		for _, kind := range []string{"incremental", "naive"} {
			b.Run(fmt.Sprintf("%s/n=%d", kind, n), func(b *testing.B) {
				benchReplay(b, kind, h)
			})
		}
	}
}

// BenchmarkTable5Active — direct incremental checking vs the
// trigger-compiled active-DBMS route.
func BenchmarkTable5Active(b *testing.B) {
	h := workload.Tickets(workload.TicketsConfig{Steps: 300, Seed: 48, ViolationRate: 0.01})
	for _, kind := range []string{"incremental", "active"} {
		b.Run(kind, func(b *testing.B) {
			benchReplay(b, kind, h)
		})
	}
}

// BenchmarkFigure3Violations — cost under injected violation rates.
func BenchmarkFigure3Violations(b *testing.B) {
	for _, rate := range []float64{0, 0.01, 0.1} {
		h := workload.Tickets(workload.TicketsConfig{Steps: 300, Seed: 49, ViolationRate: rate})
		b.Run(fmt.Sprintf("rate=%g", rate), func(b *testing.B) {
			benchReplay(b, "incremental", h)
		})
	}
}

// BenchmarkTable6Ablation — the pruning ablation: replay cost with the
// bounded-encoding pruning rules on vs off; the aux_timestamps metric
// shows the space divergence.
func BenchmarkTable6Ablation(b *testing.B) {
	h := windowHistory(800, 1, "100")
	b.Run("pruned", func(b *testing.B) {
		var ts int
		for i := 0; i < b.N; i++ {
			eng := core.New(h.Schema)
			con, _ := check.Parse("c", h.Constraints[0].Source, h.Schema)
			if err := eng.AddConstraint(con); err != nil {
				b.Fatal(err)
			}
			for _, s := range h.Steps {
				if _, err := eng.Step(s.Time, s.Tx); err != nil {
					b.Fatal(err)
				}
			}
			ts = eng.Stats().Timestamps
		}
		b.ReportMetric(float64(ts), "aux_timestamps")
	})
	b.Run("unpruned", func(b *testing.B) {
		var ts int
		for i := 0; i < b.N; i++ {
			eng := core.New(h.Schema)
			if err := eng.DisablePruning(); err != nil {
				b.Fatal(err)
			}
			con, _ := check.Parse("c", h.Constraints[0].Source, h.Schema)
			if err := eng.AddConstraint(con); err != nil {
				b.Fatal(err)
			}
			for _, s := range h.Steps {
				if _, err := eng.Step(s.Time, s.Tx); err != nil {
					b.Fatal(err)
				}
			}
			ts = eng.Stats().Timestamps
		}
		b.ReportMetric(float64(ts), "aux_timestamps")
	})
}

// BenchmarkFigure4Storage — storage comparison including the
// checkpointed naive baseline; reported via the *_bytes metrics.
func BenchmarkFigure4Storage(b *testing.B) {
	h := windowHistory(1000, 1, "100")
	b.Run("naive-checkpointed", func(b *testing.B) {
		var bytes int
		for i := 0; i < b.N; i++ {
			eng := naive.NewCheckpointed(h.Schema, 64)
			con, _ := check.Parse("c", h.Constraints[0].Source, h.Schema)
			if err := eng.AddConstraint(con); err != nil {
				b.Fatal(err)
			}
			for _, s := range h.Steps {
				if _, err := eng.Step(s.Time, s.Tx); err != nil {
					b.Fatal(err)
				}
			}
			bytes = eng.HistoryBytes()
		}
		b.ReportMetric(float64(bytes), "hist_bytes")
	})
}

// BenchmarkTable7SinceChain — the since-chain workload.
func BenchmarkTable7SinceChain(b *testing.B) {
	h := workload.Alarms(workload.AlarmsConfig{Steps: 400, Seed: 52, ViolationRate: 0.02})
	h.Constraints = []workload.ConstraintSpec{
		{Name: "ack_before_clear", Source: "clear(a) -> (ack(a) since[0,50] raisd(a))"},
	}
	for _, kind := range []string{"incremental", "naive"} {
		b.Run(kind, func(b *testing.B) {
			benchReplay(b, kind, h)
		})
	}
}
