package rtic

import (
	"sort"
	"strings"
	"testing"

	"rtic/internal/workload"
)

// lintTraces are the five equivalence-suite workloads the
// WithLint(LintWarn) invariance is pinned over.
func lintTraces() map[string]workload.History {
	return map[string]workload.History{
		"uniform": workload.Uniform(workload.UniformConfig{Steps: 200, Seed: 7, OpsPerTx: 2, Domain: 8}),
		"tickets": workload.Tickets(workload.TicketsConfig{Steps: 200, Seed: 8, ViolationRate: 0.05}),
		"hr":      workload.HR(workload.HRConfig{Steps: 200, Seed: 9, ViolationRate: 0.05}),
		"library": workload.Library(workload.LibraryConfig{Steps: 200, Seed: 10, ViolationRate: 0.05}),
		"alarms":  workload.Alarms(workload.AlarmsConfig{Steps: 200, Seed: 11, ViolationRate: 0.05}),
	}
}

func lintCanon(vs []Violation) []string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = v.Constraint + "|" + v.Binding.Key()
	}
	sort.Strings(out)
	return out
}

func newLintChecker(t *testing.T, h workload.History, opts ...Option) *Checker {
	t.Helper()
	c, err := NewChecker(h.Schema, opts...)
	if err != nil {
		t.Fatal(err)
	}
	for _, cs := range h.Constraints {
		if err := c.AddConstraint(cs.Name, cs.Source); err != nil {
			t.Fatalf("constraint %s: %v", cs.Name, err)
		}
	}
	return c
}

// TestLintWarnNeverChangesCheckingResults replays every workload trace
// on a WithLint(LintWarn) checker and a WithLint(LintOff) checker and
// demands identical violations at every step — linting observes, it
// never interferes.
func TestLintWarnNeverChangesCheckingResults(t *testing.T) {
	for name, h := range lintTraces() {
		t.Run(name, func(t *testing.T) {
			warn := newLintChecker(t, h, WithLint(LintWarn))
			off := newLintChecker(t, h, WithLint(LintOff))
			if len(off.LintDiagnostics()) != 0 {
				t.Fatalf("LintOff recorded diagnostics: %v", off.LintDiagnostics())
			}
			for i, s := range h.Steps {
				want, err := off.eng.Step(s.Time, s.Tx)
				if err != nil {
					t.Fatalf("step %d: lint-off: %v", i, err)
				}
				got, err := warn.eng.Step(s.Time, s.Tx)
				if err != nil {
					t.Fatalf("step %d: lint-warn: %v", i, err)
				}
				if g, w := lintCanon(got), lintCanon(want); strings.Join(g, ";") != strings.Join(w, ";") {
					t.Fatalf("step %d (t=%d): violations diverged\nlint-warn: %v\nlint-off:  %v", i, s.Time, g, w)
				}
			}
		})
	}
}

// TestLintStrictRejects pins strict-mode semantics: warning-or-worse
// findings make AddConstraint fail, clean constraints still install.
func TestLintStrictRejects(t *testing.T) {
	s, err := NewSchema().Relation("p", 1).Relation("q", 1).Build()
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewChecker(s, WithLint(LintStrict))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddConstraint("ok", "p(x) -> not once[0,30] q(x)"); err != nil {
		t.Fatalf("clean constraint rejected: %v", err)
	}
	err = c.AddConstraint("vacuous", "p(x) or not p(x)")
	if err == nil {
		t.Fatal("vacuous constraint installed under strict lint")
	}
	if !strings.Contains(err.Error(), "vacuous-constraint") {
		t.Errorf("error = %v, want rule named", err)
	}
	if got := c.Constraints(); len(got) != 1 || got[0] != "ok" {
		t.Errorf("Constraints() = %v", got)
	}
	// Findings for the rejected constraint stay inspectable.
	found := false
	for _, d := range c.LintDiagnostics() {
		if d.Constraint == "vacuous" && d.Rule == "vacuous-constraint" {
			found = true
		}
	}
	if !found {
		t.Errorf("diagnostics = %v, want vacuous-constraint recorded", c.LintDiagnostics())
	}
}

// TestLintWarnRecordsButInstalls: the default mode records findings
// without rejecting.
func TestLintWarnRecordsButInstalls(t *testing.T) {
	s, err := NewSchema().Relation("p", 1).Build()
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewChecker(s) // LintWarn is the default
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddConstraint("dead_prev", "p(x) -> prev[0,0] p(x)"); err != nil {
		t.Fatalf("LintWarn rejected: %v", err)
	}
	diags := c.LintDiagnostics()
	if len(diags) == 0 {
		t.Fatal("no diagnostics recorded")
	}
	if diags[0].Rule != "interval-unsatisfiable" {
		t.Errorf("rule = %s", diags[0].Rule)
	}
	if got := c.Constraints(); len(got) != 1 {
		t.Errorf("constraint not installed: %v", got)
	}
}
