// Tickets: the paper's deadline pattern — an action must be preceded by
// its enabling event within a real-time bound. A payment is only valid
// if the ticket was reserved at most 3 days earlier; the example runs a
// small booking desk and shows on-time, late and never-reserved payments.
package main

import (
	"fmt"
	"log"

	"rtic"
)

func main() {
	s, err := rtic.NewSchema().
		Relation("reserved", 1).
		Relation("paid", 1).
		Build()
	if err != nil {
		log.Fatal(err)
	}
	c, err := rtic.NewChecker(s)
	if err != nil {
		log.Fatal(err)
	}
	c.MustAddConstraint("pay_in_time", "paid(tk) -> once[0,3] reserved(tk)")

	day := uint64(0)
	commit := func(what string, tx *rtic.Tx) {
		day++
		vs, err := tx.Commit(day)
		if err != nil {
			log.Fatal(err)
		}
		status := "ok"
		if len(vs) > 0 {
			status = ""
			for _, v := range vs {
				status += "VIOLATION " + v.String()
			}
		}
		fmt.Printf("day %2d  %-34s %s\n", day, what, status)
	}

	// Reservations and payments are *events*: each marker is visible in
	// exactly one state and removed by the next transaction, so the
	// metric window — not tuple persistence — decides satisfaction.

	// Ticket 1: reserved day 1, paid day 3 — within the deadline.
	commit("reserve ticket 1", c.Begin().Insert("reserved", rtic.Int(1)))
	commit("(idle)", c.Begin().Delete("reserved", rtic.Int(1)))
	commit("pay ticket 1 (on time)", c.Begin().Insert("paid", rtic.Int(1)))

	// Ticket 2: reserved day 4, paid day 9 — two days late.
	commit("reserve ticket 2", c.Begin().
		Delete("paid", rtic.Int(1)).
		Insert("reserved", rtic.Int(2)))
	commit("(idle)", c.Begin().Delete("reserved", rtic.Int(2)))
	commit("(idle)", c.Begin())
	commit("(idle)", c.Begin())
	commit("(idle)", c.Begin())
	commit("pay ticket 2 (late!)", c.Begin().Insert("paid", rtic.Int(2)))

	// Ticket 3: paid without ever being reserved.
	commit("pay ticket 3 (never reserved!)", c.Begin().
		Delete("paid", rtic.Int(2)).
		Insert("paid", rtic.Int(3)))
}
