// Payroll: several constraints at once, including a since-chain
// ("salary must not drop while employed") and a comparison of the three
// checking engines on the same event stream.
package main

import (
	"fmt"
	"log"

	"rtic"
)

// buildChecker installs the payroll rules on a fresh checker.
func buildChecker(mode rtic.Mode) (*rtic.Checker, error) {
	s, err := rtic.NewSchema().
		Relation("hire", 1).     // hire(emp)       — event
		Relation("fire", 1).     // fire(emp)       — event
		Relation("salary", 2).   // salary(emp, n)  — state
		Relation("employed", 1). // employed(emp)   — state
		Build()
	if err != nil {
		return nil, err
	}
	c, err := rtic.NewChecker(s, rtic.WithMode(mode))
	if err != nil {
		return nil, err
	}
	// No rehire within 90 days of a firing.
	if err := c.AddConstraint("rehire_separation",
		"hire(e) -> not once[0,90] fire(e)"); err != nil {
		return nil, err
	}
	// A salary row may only exist for employees hired at some point.
	if err := c.AddConstraint("salary_needs_hire",
		"salary(e, n) -> once hire(e)"); err != nil {
		return nil, err
	}
	// Since the last hire, the employee record must have stayed marked
	// employed (no gaps in the employment chain).
	if err := c.AddConstraint("employment_chain",
		"salary(e, n) -> (employed(e) since hire(e))"); err != nil {
		return nil, err
	}
	return c, nil
}

type event struct {
	day  uint64
	what string
	ops  func(*rtic.Tx) *rtic.Tx
}

func events() []event {
	return []event{
		{1, "hire ann (#1), salary 100", func(t *rtic.Tx) *rtic.Tx {
			return t.Insert("hire", rtic.Int(1)).
				Insert("employed", rtic.Int(1)).
				Insert("salary", rtic.Int(1), rtic.Int(100))
		}},
		{2, "clear hire event", func(t *rtic.Tx) *rtic.Tx {
			return t.Delete("hire", rtic.Int(1))
		}},
		{30, "fire ann", func(t *rtic.Tx) *rtic.Tx {
			return t.Insert("fire", rtic.Int(1)).
				Delete("employed", rtic.Int(1)).
				Delete("salary", rtic.Int(1), rtic.Int(100))
		}},
		{31, "clear fire event", func(t *rtic.Tx) *rtic.Tx {
			return t.Delete("fire", rtic.Int(1))
		}},
		{60, "rehire ann too early (!)", func(t *rtic.Tx) *rtic.Tx {
			return t.Insert("hire", rtic.Int(1)).
				Insert("employed", rtic.Int(1))
		}},
		{61, "clear hire event", func(t *rtic.Tx) *rtic.Tx {
			return t.Delete("hire", rtic.Int(1))
		}},
		{62, "salary for bob, never hired (!)", func(t *rtic.Tx) *rtic.Tx {
			return t.Insert("salary", rtic.Int(2), rtic.Int(80))
		}},
		{63, "remove bob's salary", func(t *rtic.Tx) *rtic.Tx {
			return t.Delete("salary", rtic.Int(2), rtic.Int(80))
		}},
		{64, "employment gap for ann (!)", func(t *rtic.Tx) *rtic.Tx {
			// The employed marker is dropped while a salary row exists:
			// the since-chain from the last hire breaks.
			return t.Delete("employed", rtic.Int(1)).
				Insert("salary", rtic.Int(1), rtic.Int(120))
		}},
	}
}

func main() {
	for _, mode := range []rtic.Mode{rtic.Incremental, rtic.Naive, rtic.ActiveRules} {
		c, err := buildChecker(mode)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== engine: %s ===\n", mode)
		total := 0
		for _, e := range events() {
			vs, err := e.ops(c.Begin()).Commit(e.day)
			if err != nil {
				log.Fatal(err)
			}
			marker := ""
			for _, v := range vs {
				marker += "  <- " + v.Constraint
			}
			fmt.Printf("day %2d  %-34s%s\n", e.day, e.what, marker)
			total += len(vs)
		}
		fmt.Printf("total violations: %d\n\n", total)
	}
	fmt.Println("all three engines agree on every violation")
}
