// Netmonitor: run the TCP integrity monitor in-process, stream
// transactions to it over the line protocol, checkpoint its (small)
// state, and restart from the checkpoint — end to end, the operational
// story bounded history encoding enables.
package main

import (
	"bufio"
	"bytes"
	"fmt"
	"log"
	"net"
	"strings"

	"rtic/internal/monitor"
	"rtic/internal/spec"
	"rtic/internal/storage"
)

const specText = `
relation sensor/1   -- sensor(id): a reading arrived
relation alarm/1    -- alarm(id): the reading crossed a threshold
relation ack/1      -- ack(id): an operator acknowledged

-- every alarm must be acknowledged within 5 ticks
constraint ack_deadline: alarm(id) leadsto[0,5] ack(id)
`

func main() {
	sp, err := spec.ParseSpec(strings.NewReader(specText))
	if err != nil {
		log.Fatal(err)
	}
	m, err := monitor.New(sp.Schema, sp.Constraints)
	if err != nil {
		log.Fatal(err)
	}

	// A subscriber sees every violation the monitor publishes.
	alerts, cancel := m.Subscribe(16)
	defer cancel()

	srv := monitor.NewServer(m)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(l) //nolint:errcheck — returns when the listener closes
	defer func() {
		l.Close()
		srv.Close()
	}()
	fmt.Println("monitor listening on", l.Addr())

	// A producer streams events over TCP.
	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)
	send := func(line string) {
		fmt.Fprintf(conn, "%s\n", line)
		for {
			reply, err := r.ReadString('\n')
			if err != nil {
				log.Fatal(err)
			}
			reply = strings.TrimSpace(reply)
			fmt.Printf("  -> %-28s <- %s\n", line, reply)
			if strings.HasPrefix(reply, "ok") || strings.HasPrefix(reply, "error") ||
				strings.HasPrefix(reply, "stats") {
				return
			}
		}
	}

	send("@1 +alarm(42)")
	send("@2 -alarm(42) +ack(42)") // acknowledged in time
	send("@3 -ack(42)")
	send("@4 +alarm(43)")
	send("@5 -alarm(43)")
	send("@11 +sensor(9)") // deadline for alarm 43 expired at t=10
	send("stats")

	// The subscriber received the deadline violation.
	v := <-alerts
	fmt.Println("subscriber observed:", v)

	// Checkpoint the monitor and restart from the checkpoint.
	var snap bytes.Buffer
	if err := m.Snapshot(&snap); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpoint size: %d bytes for %d committed states\n", snap.Len(), m.Len())

	restored, err := monitor.Restore(sp.Schema, &snap)
	if err != nil {
		log.Fatal(err)
	}
	// An empty transaction is a pure clock tick.
	vs, err := restored.Apply(12, storage.NewTransaction())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("restored monitor continues at t=%d (%d violations in next commit)\n",
		restored.Now(), len(vs))
}
