// Library: a larger synthetic run — thousands of loan transactions with
// a controlled late-return rate — showing violation detection at scale
// and the bounded auxiliary footprint that is the paper's headline
// claim. The same stream is replayed through the naive full-history
// checker to contrast the space costs.
package main

import (
	"fmt"
	"log"

	"rtic"
	"rtic/internal/check"
	"rtic/internal/naive"
	"rtic/internal/workload"
)

func main() {
	const (
		steps      = 2000
		loanPeriod = 14
		lateRate   = 0.02
	)
	h := workload.Library(workload.LibraryConfig{
		Steps:         steps,
		Seed:          2026,
		LoanPeriod:    loanPeriod,
		ViolationRate: lateRate,
	})

	// Incremental checker through the public API.
	s, err := rtic.NewSchema().
		Relation("checkout", 2).
		Relation("ret", 2).
		Build()
	if err != nil {
		log.Fatal(err)
	}
	c, err := rtic.NewChecker(s)
	if err != nil {
		log.Fatal(err)
	}
	cs := workload.LibraryConstraint(loanPeriod)
	c.MustAddConstraint(cs.Name, cs.Source)

	late := 0
	for _, st := range h.Steps {
		tx := c.Begin()
		for _, op := range st.Tx.Ops() {
			if op.Insert {
				tx.Insert(op.Rel, op.Tuple...)
			} else {
				tx.Delete(op.Rel, op.Tuple...)
			}
		}
		vs, err := tx.Commit(st.Time)
		if err != nil {
			log.Fatal(err)
		}
		for _, v := range vs {
			late++
			if late <= 5 {
				fmt.Println("late return:", v)
			}
		}
	}
	if late > 5 {
		fmt.Printf("... and %d more\n", late-5)
	}

	st := c.Stats()
	fmt.Printf("\nprocessed %d loan transactions, %d late returns detected\n", steps, late)
	fmt.Printf("incremental checker auxiliary state: %d entries, ~%.1f KiB\n",
		st.Entries, float64(st.Bytes)/1024)

	// The naive checker needs the whole history for the same answers.
	nc := naive.New(h.Schema)
	con, err := check.Parse(cs.Name, cs.Source, h.Schema)
	if err != nil {
		log.Fatal(err)
	}
	if err := nc.AddConstraint(con); err != nil {
		log.Fatal(err)
	}
	nLate := 0
	for _, stp := range h.Steps {
		vs, err := nc.Step(stp.Time, stp.Tx)
		if err != nil {
			log.Fatal(err)
		}
		nLate += len(vs)
	}
	fmt.Printf("naive checker stored history:            ~%.1f KiB (%d states)\n",
		float64(nc.HistoryBytes())/1024, nc.Len())
	if nLate != late {
		log.Fatalf("checkers disagree: %d vs %d", late, nLate)
	}
	fmt.Println("both checkers report identical violations")
}
