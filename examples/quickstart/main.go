// Quickstart: install a real-time constraint, commit transactions, and
// watch violations appear and age out of the metric window.
package main

import (
	"fmt"
	"log"

	"rtic"
)

func main() {
	// A database of hiring and firing events.
	s, err := rtic.NewSchema().
		Relation("hire", 1).
		Relation("fire", 1).
		Build()
	if err != nil {
		log.Fatal(err)
	}

	// The default engine is the paper's incremental bounded-history
	// checker: no history is stored, only small auxiliary relations.
	c, err := rtic.NewChecker(s)
	if err != nil {
		log.Fatal(err)
	}

	// "An employee may not be rehired within 365 days of being fired."
	if err := c.AddConstraint("no_quick_rehire",
		"hire(e) -> not once[0,365] fire(e)"); err != nil {
		log.Fatal(err)
	}

	report := func(day uint64, what string, vs []rtic.Violation) {
		fmt.Printf("day %3d  %-28s ", day, what)
		if len(vs) == 0 {
			fmt.Println("ok")
			return
		}
		for _, v := range vs {
			fmt.Printf("VIOLATION: %s\n", v)
		}
	}

	// Day 0: employee 7 is fired.
	vs, err := c.Begin().Insert("fire", rtic.Int(7)).Commit(0)
	if err != nil {
		log.Fatal(err)
	}
	report(0, "fire employee 7", vs)

	// Day 100: employee 7 is rehired — inside the window.
	vs, err = c.Begin().
		Delete("fire", rtic.Int(7)).
		Insert("hire", rtic.Int(7)).
		Commit(100)
	if err != nil {
		log.Fatal(err)
	}
	report(100, "rehire employee 7", vs)

	st := c.Stats()
	fmt.Printf("        auxiliary state: %d temporal node(s), %d entries, %d timestamps, ~%d bytes\n",
		st.Nodes, st.Entries, st.Timestamps, st.Bytes)

	// Day 366: the old firing has aged out; the same database state is
	// legal again — the metric bound, not the event, drives violations.
	vs, err = c.Begin().Commit(366)
	if err != nil {
		log.Fatal(err)
	}
	report(366, "(no changes)", vs)

	st = c.Stats()
	fmt.Printf("\nauxiliary state after the window passed: %d entries (the firing aged out)\n", st.Entries)
	fmt.Println("no history was stored to answer any of these checks")
}
