// Package rtic implements real-time integrity constraints for evolving
// databases, reproducing Jan Chomicki's PODS 1992 paper "Real-Time
// Integrity Constraints".
//
// Constraints are formulas of Past Metric Temporal Logic over a
// timestamped history of database states:
//
//	hire(e) -> not once[0,365] fire(e)      -- no rehire within a year
//	paid(tk) -> once[0,3] reserved(tk)      -- pay within 3 days of reserving
//	clear(a) -> (ack(a) since raisd(a))     -- acknowledged since raised
//
// A Checker ingests one transaction per commit and reports the witnesses
// violating any installed constraint in the resulting state. The default
// engine is the paper's contribution — incremental checking with bounded
// history encoding: it stores no history, only small auxiliary relations
// whose size is bounded by the constraints' metric windows, and its
// per-transaction cost is independent of history length. Two other
// engines exist for comparison and integration: the naive full-history
// evaluator and an active-DBMS route that compiles constraints into
// trigger rules.
//
// Quick start:
//
//	s, _ := rtic.NewSchema().Relation("hire", 1).Relation("fire", 1).Build()
//	c, _ := rtic.NewChecker(s)
//	_ = c.AddConstraint("no_quick_rehire", "hire(e) -> not once[0,365] fire(e)")
//	violations, _ := c.Begin().Insert("fire", rtic.Int(7)).Commit(0)
//	violations, _ = c.Begin().
//	    Delete("fire", rtic.Int(7)).
//	    Insert("hire", rtic.Int(7)).
//	    Commit(100) // reports e=7
package rtic

import (
	"fmt"
	"io"
	"log/slog"
	"time"

	"rtic/internal/active"
	"rtic/internal/check"
	"rtic/internal/core"
	"rtic/internal/engine"
	"rtic/internal/fol"
	"rtic/internal/lint"
	"rtic/internal/mtl"
	"rtic/internal/naive"
	"rtic/internal/obs"
	"rtic/internal/schema"
	"rtic/internal/shard"
	"rtic/internal/storage"
	"rtic/internal/tuple"
	"rtic/internal/value"
)

// Value is a database constant: an integer or a string.
type Value = value.Value

// Int returns an integer value.
func Int(i int64) Value { return value.Int(i) }

// Str returns a string value.
func Str(s string) Value { return value.Str(s) }

// Tuple is a row of values.
type Tuple = tuple.Tuple

// Violation reports one witness of a constraint failure: the constraint
// name, the state (index and timestamp) and the binding of the
// constraint's free variables.
type Violation = check.Violation

// Schema describes the database relations a checker ranges over.
type Schema = schema.Schema

// SchemaBuilder accumulates relation definitions.
type SchemaBuilder struct{ b *schema.Builder }

// NewSchema starts a schema definition.
func NewSchema() *SchemaBuilder {
	return &SchemaBuilder{b: schema.NewBuilder()}
}

// Relation adds a relation of the given arity.
func (sb *SchemaBuilder) Relation(name string, arity int) *SchemaBuilder {
	sb.b.Relation(name, arity)
	return sb
}

// Build returns the schema or the first definition error.
func (sb *SchemaBuilder) Build() (*Schema, error) { return sb.b.Build() }

// MustBuild builds or panics.
func (sb *SchemaBuilder) MustBuild() *Schema { return sb.b.MustBuild() }

// Mode selects the checking engine. It aliases the internal engine
// package's Mode so the public API, the monitor and the daemons share
// one enum.
type Mode = engine.Mode

const (
	// Incremental is the paper's method: bounded history encoding,
	// no stored history. The default.
	Incremental = engine.Incremental
	// Naive stores the full history and evaluates the temporal
	// semantics directly; the baseline the paper improves on.
	Naive = engine.Naive
	// ActiveRules compiles constraints to production rules maintaining
	// the encoding in ordinary relations (the active-DBMS route).
	ActiveRules = engine.ActiveRules
)

// ParseMode resolves a mode name as accepted by the CLIs: "incremental",
// "naive", "active" or "active-rules". Unknown names produce an error
// listing the valid ones.
func ParseMode(s string) (Mode, error) { return engine.ParseMode(s) }

// ModeNames lists the spellings ParseMode accepts, for usage strings.
func ModeNames() []string { return engine.ModeNames() }

// Option configures a Checker.
type Option func(*config)

type config struct {
	mode   Mode
	par    int
	shards int
	obs    *obs.Observer
	lint   LintMode
}

// Diagnostic is one static-analysis finding of the constraint linter;
// see the rtic lint command and docs/LINTING.md for the rule catalogue.
type Diagnostic = lint.Diagnostic

// Severity grades a lint finding.
type Severity = lint.Severity

const (
	// LintInfo findings are advisory.
	LintInfo = lint.Info
	// LintWarning findings flag legal but suspicious constraints.
	LintWarning = lint.Warning
	// LintError findings are constraints that cannot work as written.
	LintError = lint.Error
)

// LintMode selects how AddConstraint treats linter findings.
type LintMode int

const (
	// LintWarn (the default) runs the linter and records findings —
	// retrieve them with LintDiagnostics — but installs the constraint
	// regardless. Checking results are unaffected.
	LintWarn LintMode = iota
	// LintStrict rejects constraints with Warning-or-worse findings.
	LintStrict
	// LintOff skips the linter entirely.
	LintOff
)

// WithLint selects the lint mode for AddConstraint (default LintWarn).
func WithLint(m LintMode) Option {
	return func(c *config) { c.lint = m }
}

// WithMode selects the checking engine (default Incremental).
func WithMode(m Mode) Option {
	return func(c *config) { c.mode = m }
}

// WithParallelism sets the worker-pool width of the incremental
// engine's commit pipeline: independent auxiliary-node updates and
// constraint checks of one commit run on at most n goroutines. n=1
// runs the pipeline inline (the exact sequential algorithm); n<=0 —
// the default — selects GOMAXPROCS. The other engines check
// sequentially and ignore the option.
func WithParallelism(n int) Option {
	return func(c *config) { c.par = n }
}

// WithShards partitions the checker's state across n independent shard
// engines fronted by a router: each relation is hash-partitioned by a
// column inferred from the constraints' join keys, transactions split
// by ownership, and the per-shard commits run concurrently. Results
// stay exact — a constraint whose witnesses the static analysis cannot
// pin to one shard falls back to a designated global shard (see
// internal/shard). n<=1 selects the plain unsharded engine. Sharding
// composes with WithMode; WithParallelism then sets each shard
// engine's internal pipeline width (default 1 when sharded — shard
// concurrency replaces pipeline concurrency).
func WithShards(n int) Option {
	return func(c *config) { c.shards = n }
}

// Observer bundles the instrumentation sinks a checker can carry: a
// metric set (counters, gauges, latency histograms behind a
// Prometheus-format registry) and a trace hook. See NewRegistry,
// NewMetrics and NewSlogTracer.
type Observer = obs.Observer

// Metrics is the standard engine/monitor metric set; see NewMetrics.
type Metrics = obs.Metrics

// Registry holds metrics and writes the Prometheus text exposition.
type Registry = obs.Registry

// Tracer receives engine trace events (parse, step, per-node update,
// constraint check, snapshot save/restore).
type Tracer = obs.Tracer

// TraceEvent is one completed engine operation delivered to a Tracer.
type TraceEvent = obs.TraceEvent

// NewRegistry returns an empty metrics registry; expose it with its
// WritePrometheus method.
func NewRegistry() *Registry { return obs.NewRegistry() }

// NewMetrics registers the standard metric set on r.
func NewMetrics(r *Registry) *Metrics { return obs.NewMetrics(r) }

// NewSlogTracer returns a Tracer logging one structured line per event
// through l (nil means slog.Default()).
func NewSlogTracer(l *slog.Logger) Tracer { return obs.NewSlogTracer(l) }

// NewSamplingTracer wraps t so only one in every n high-frequency
// events (per-node updates, per-constraint checks) reaches it; errors
// and low-frequency events always pass through.
func NewSamplingTracer(t Tracer, n int) Tracer { return obs.NewSamplingTracer(t, n) }

// Span is one timed section of the commit path. Spans form a tree
// rooted at a commit: per-phase children (apply, update, check,
// carry), per-worker and per-shard sub-spans, WAL append/fsync spans.
type Span = obs.Span

// SpanSink receives completed commit span trees; set it on
// Observer.Spans. See NewSpanRecorder and WriteChromeTrace.
type SpanSink = obs.SpanSink

// SpanRecorder is a SpanSink keeping the last N commit span trees in a
// ring buffer.
type SpanRecorder = obs.SpanRecorder

// NewSpanRecorder returns a recorder keeping the last capacity commit
// span trees (capacity <= 0 selects 4096).
func NewSpanRecorder(capacity int) *SpanRecorder { return obs.NewSpanRecorder(capacity) }

// WriteChromeTrace writes recorded span trees as Chrome trace_event
// JSON — the format chrome://tracing and ui.perfetto.dev open
// directly.
func WriteChromeTrace(w io.Writer, roots []*Span) error { return obs.WriteChromeTrace(w, roots) }

// WithObserver attaches instrumentation to the checker: metric updates
// and trace events from the engine's hot paths. A nil observer (or one
// with nil sinks) costs nothing beyond pointer checks per commit.
func WithObserver(o *Observer) Option {
	return func(c *config) { c.obs = o }
}

// Checker validates a stream of transactions against installed
// constraints. Checkers are not safe for concurrent use.
type Checker struct {
	schema   *Schema
	mode     Mode
	eng      engine.Engine
	inc      *core.Checker // non-nil in unsharded Incremental mode, for Stats
	rtr      *shard.Router // non-nil when sharded
	obs      *obs.Observer
	started  bool
	names    []string
	lintMode LintMode
	diags    []lint.Diagnostic
}

// NewChecker creates a checker over s.
func NewChecker(s *Schema, opts ...Option) (*Checker, error) {
	if s == nil {
		return nil, fmt.Errorf("rtic: nil schema")
	}
	cfg := config{mode: Incremental}
	for _, o := range opts {
		o(&cfg)
	}
	c := &Checker{schema: s, mode: cfg.mode, obs: cfg.obs, lintMode: cfg.lint}
	switch {
	case cfg.shards > 1:
		rtr, err := shard.NewMode(s, cfg.shards, cfg.mode, cfg.par)
		if err != nil {
			return nil, fmt.Errorf("rtic: %w", err)
		}
		c.eng, c.rtr = rtr, rtr
	case cfg.mode == Incremental:
		inc := core.New(s, core.WithParallelism(cfg.par))
		c.eng, c.inc = inc, inc
	case cfg.mode == Naive:
		c.eng = naive.New(s)
	case cfg.mode == ActiveRules:
		c.eng = active.New(s)
	default:
		return nil, fmt.Errorf("rtic: unknown mode %v", cfg.mode)
	}
	if cfg.obs != nil {
		c.eng.SetObserver(cfg.obs)
	}
	return c, nil
}

// Mode reports the engine in use.
func (c *Checker) Mode() Mode { return c.mode }

// Shards reports the shard count of the routing layer (1 = unsharded).
func (c *Checker) Shards() int {
	if c.rtr != nil {
		return c.rtr.Shards()
	}
	return 1
}

// Parallelism reports the worker-pool width of the commit pipeline: the
// incremental engine's configured width, or 1 for the other engines,
// which check sequentially.
func (c *Checker) Parallelism() int {
	if c.inc != nil {
		return c.inc.Parallelism()
	}
	return 1
}

// Constraints returns the names of installed constraints, in
// installation order.
func (c *Checker) Constraints() []string {
	return append([]string(nil), c.names...)
}

// AddConstraint parses, validates and installs a constraint. Constraints
// must be installed before the first commit (the auxiliary encoding
// summarizes the history from its start). The constraint formula is
// implicitly universally quantified; its denial must be range-restricted
// so violation witnesses are enumerable — AddConstraint reports a
// detailed error otherwise.
func (c *Checker) AddConstraint(name, src string) error {
	if c.started {
		return fmt.Errorf("rtic: constraint %q added after the first commit", name)
	}
	_, tr := c.obs.Parts()
	var p0 time.Time
	if tr != nil {
		p0 = time.Now()
	}
	con, err := check.Parse(name, src, c.schema)
	if tr != nil {
		tr.Trace(TraceEvent{Op: obs.OpParse, Detail: name, Duration: time.Since(p0), Err: err})
	}
	if err != nil {
		return err
	}
	if c.lintMode != LintOff {
		diags := lint.Constraint(name, con.Formula, c.schema, lint.Options{})
		c.diags = append(c.diags, diags...)
		if c.lintMode == LintStrict {
			if max := lint.MaxSeverity(diags); max >= lint.Warning {
				worst := diags[0]
				for _, d := range diags {
					if d.Severity == max {
						worst = d
						break
					}
				}
				return fmt.Errorf("rtic: constraint %q rejected by strict lint (%d finding(s)): %s",
					name, len(diags), worst.String())
			}
		}
	}
	if err := c.eng.AddConstraint(con); err != nil {
		return err
	}
	c.names = append(c.names, name)
	return nil
}

// LintDiagnostics returns the linter findings accumulated by
// AddConstraint, in installation order. Empty under WithLint(LintOff).
// Findings never change checking results except under LintStrict,
// where a Warning-or-worse finding makes AddConstraint fail.
func (c *Checker) LintDiagnostics() []Diagnostic {
	return append([]Diagnostic(nil), c.diags...)
}

// MustAddConstraint installs or panics; for literal constraint sets.
func (c *Checker) MustAddConstraint(name, src string) {
	if err := c.AddConstraint(name, src); err != nil {
		panic(err)
	}
}

// ValidateFormula parses and validates a constraint against the schema
// without installing it, returning its free variables.
func (c *Checker) ValidateFormula(src string) ([]string, error) {
	con, err := check.Parse("probe", src, c.schema)
	if err != nil {
		return nil, err
	}
	return con.Vars, nil
}

// Begin starts a transaction against the checker.
func (c *Checker) Begin() *Tx {
	return &Tx{c: c, tx: storage.NewTransaction()}
}

// Stats describes the auxiliary storage of the incremental engine.
type Stats struct {
	// Nodes is the number of temporal subformulas tracked.
	Nodes int
	// Entries is the number of bindings currently tracked, Timestamps
	// the timestamps stored across them, Bytes an estimated footprint.
	Entries    int
	Timestamps int
	Bytes      int
}

// Stats reports the incremental engine's auxiliary storage; it returns
// zeros for other modes. For a sharded incremental checker the figures
// are summed across shards: Entries and Timestamps match the unsharded
// engine exactly (each tracked binding lives on one shard), while Nodes
// and Bytes count the per-shard copies of partitionable constraints'
// node structures.
func (c *Checker) Stats() Stats {
	var s core.Stats
	switch {
	case c.inc != nil:
		s = c.inc.Stats()
	case c.rtr != nil && c.mode == Incremental:
		s = c.rtr.Stats()
	default:
		return Stats{}
	}
	return Stats{Nodes: s.Nodes, Entries: s.Entries, Timestamps: s.Timestamps, Bytes: s.Bytes}
}

// Explanation is the evidence trail of a violation: for every temporal
// subformula the violating binding reaches, whether it held and which
// in-window anchor timestamps witnessed it.
type Explanation = core.Explanation

// Explain answers "why was this violation flagged?" from the auxiliary
// encoding. Only the Incremental engine supports it, and only for
// violations of the most recent commit (the encoding answers for the
// current state only).
func (c *Checker) Explain(v Violation) (*Explanation, error) {
	if c.rtr != nil {
		return nil, fmt.Errorf("rtic: Explain is not available on a sharded checker")
	}
	if c.inc == nil {
		return nil, fmt.Errorf("rtic: Explain is only available in Incremental mode (current: %v)", c.mode)
	}
	return c.inc.Explain(v)
}

// SkipInfo records which checking strategy the incremental engine chose
// for one constraint at the latest commit — skipped (previous answer
// reused), seeded (re-derived from the delta), planned (compiled plan
// ran in full), or tree-walk — and why.
type SkipInfo = core.SkipInfo

// SkipAction is the strategy named in a SkipInfo.
type SkipAction = core.SkipAction

// The checking strategies LastSkips can report.
const (
	ActionSkipped  = core.ActionSkipped
	ActionSeeded   = core.ActionSeeded
	ActionPlanned  = core.ActionPlanned
	ActionTreeWalk = core.ActionTreeWalk
)

// LastSkips reports the per-constraint strategy record of the latest
// commit, in constraint-installation order: the commit-level
// counterpart of Explain. Only the unsharded Incremental engine records
// it; other configurations return nil.
func (c *Checker) LastSkips() []SkipInfo {
	if c.inc == nil {
		return nil
	}
	return c.inc.LastSkips()
}

// Tx is a transaction under construction: an ordered list of tuple
// insertions and deletions committed atomically at one timestamp.
type Tx struct {
	c   *Checker
	tx  *storage.Transaction
	err error
}

// Insert schedules the insertion of a tuple into rel.
func (t *Tx) Insert(rel string, vals ...Value) *Tx {
	t.tx.Insert(rel, tuple.Of(vals...))
	return t
}

// Delete schedules the deletion of a tuple from rel.
func (t *Tx) Delete(rel string, vals ...Value) *Tx {
	t.tx.Delete(rel, tuple.Of(vals...))
	return t
}

// Commit applies the transaction at the given timestamp (timestamps must
// be strictly increasing across commits) and returns the violation
// witnesses of the resulting state. A violation does not roll the
// transaction back; reacting to violations is the caller's policy, as in
// the paper's detection-oriented model.
func (t *Tx) Commit(time uint64) ([]Violation, error) {
	if t.err != nil {
		return nil, t.err
	}
	vs, err := t.c.eng.Step(time, t.tx)
	if err != nil {
		return nil, err
	}
	t.c.started = true
	return vs, nil
}

// Batch accumulates transactions for one amortized multi-commit: each
// added transaction still commits atomically at its own timestamp, but
// fixed per-commit overhead (for the incremental engine, the
// auxiliary-storage gauge refresh) is paid once per batch — the bulk
// path for replaying a backlog or ingesting a high-rate feed.
type Batch struct {
	c     *Checker
	steps []engine.Step
	err   error
}

// BeginBatch starts a batch commit against the checker.
func (c *Checker) BeginBatch() *Batch { return &Batch{c: c} }

// Add appends a transaction built with Begin to the batch, to commit at
// the given timestamp. Timestamps must be strictly increasing within
// the batch and after the checker's last commit.
func (b *Batch) Add(time uint64, t *Tx) *Batch {
	if b.err != nil {
		return b
	}
	if t == nil || t.c != b.c {
		b.err = fmt.Errorf("rtic: batch Add of a transaction from a different checker")
		return b
	}
	if t.err != nil {
		b.err = t.err
		return b
	}
	b.steps = append(b.steps, engine.Step{Time: time, Tx: t.tx})
	return b
}

// Commit commits the batched transactions in order and returns one
// violation slice per transaction. On error the committed prefix stays
// committed (the detection-oriented model never rolls back) and the
// prefix's violations are returned alongside the error.
func (b *Batch) Commit() ([][]Violation, error) {
	if b.err != nil {
		return nil, b.err
	}
	out, err := b.c.eng.StepBatch(b.steps)
	if len(out) > 0 {
		b.c.started = true
	}
	return out, err
}

// SaveSnapshot checkpoints the checker's complete state — the current
// database, clock and (small) auxiliary encoding — so a monitor can
// restart without replaying its history. Only the Incremental engine
// supports snapshots.
func (c *Checker) SaveSnapshot(w io.Writer) error {
	if c.rtr != nil {
		return fmt.Errorf("rtic: snapshots are not available on a sharded checker; use per-shard WAL journals for durability")
	}
	if c.inc == nil {
		return fmt.Errorf("rtic: snapshots are only available in Incremental mode (current: %v)", c.mode)
	}
	return c.inc.SaveSnapshot(w)
}

// RestoreChecker rebuilds an Incremental checker from a snapshot written
// by SaveSnapshot; the snapshot carries its constraints. The meaningful
// options are WithObserver and WithParallelism (restored checkers are
// always Incremental); the restore itself is traced when a tracer is
// attached.
func RestoreChecker(s *Schema, r io.Reader, opts ...Option) (*Checker, error) {
	cfg := config{mode: Incremental}
	for _, o := range opts {
		o(&cfg)
	}
	inc, err := core.LoadSnapshotObserved(s, r, cfg.obs, core.WithParallelism(cfg.par))
	if err != nil {
		return nil, err
	}
	c := &Checker{schema: s, mode: Incremental, eng: inc, inc: inc, obs: cfg.obs, started: inc.Len() > 0, lintMode: cfg.lint}
	for _, name := range incConstraintNames(inc) {
		c.names = append(c.names, name)
	}
	return c, nil
}

func incConstraintNames(inc *core.Checker) []string { return inc.ConstraintNames() }

// QueryResult holds the satisfying bindings of an ad-hoc query: Rows[i]
// assigns values to Vars positionally.
type QueryResult struct {
	Vars []string
	Rows []Tuple
}

// Query evaluates a first-order (non-temporal) formula against the
// current database state and returns its satisfying bindings, sorted.
// The formula must be range-restricted, like a constraint denial:
//
//	res, err := c.Query("hire(e) and not fire(e)")
func (c *Checker) Query(src string) (*QueryResult, error) {
	f, err := mtl.Parse(src)
	if err != nil {
		return nil, err
	}
	if err := fol.CheckSchema(f, c.schema); err != nil {
		return nil, err
	}
	kernel := mtl.Simplify(mtl.Normalize(f))
	temporal := false
	mtl.Walk(kernel, func(g mtl.Formula) {
		switch g.(type) {
		case *mtl.Prev, *mtl.Once, *mtl.Since:
			temporal = true
		}
	})
	if temporal {
		return nil, fmt.Errorf("rtic: queries are first-order; temporal operators belong in constraints")
	}
	if err := mtl.CheckSafe(kernel); err != nil {
		return nil, err
	}
	st, err := c.currentState()
	if err != nil {
		return nil, err
	}
	b, err := fol.NewEvaluator(st, queryOracle{}).Eval(kernel)
	if err != nil {
		return nil, err
	}
	return &QueryResult{Vars: b.Vars(), Rows: b.Rows()}, nil
}

func (c *Checker) currentState() (*storage.State, error) {
	switch eng := c.eng.(type) {
	case *core.Checker:
		return eng.State(), nil
	case *naive.Checker:
		return eng.State(), nil
	case *active.Checker:
		return eng.State()
	case *shard.Router:
		return eng.State()
	default:
		return nil, fmt.Errorf("rtic: unknown engine %T", c.eng)
	}
}

// queryOracle rejects temporal nodes; queries are pure first-order.
type queryOracle struct{}

func (queryOracle) Enumerate(f mtl.Formula) (*fol.Bindings, error) {
	return nil, fmt.Errorf("rtic: temporal node %q in query", f.String())
}

func (queryOracle) Test(f mtl.Formula, _ fol.Env) (bool, error) {
	return false, fmt.Errorf("rtic: temporal node %q in query", f.String())
}

// ParseFormula parses a Past MTL formula and returns its canonical
// rendering; a convenience for tooling.
func ParseFormula(src string) (string, error) {
	f, err := mtl.Parse(src)
	if err != nil {
		return "", err
	}
	return f.String(), nil
}
