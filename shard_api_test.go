package rtic

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestShardsAccessor(t *testing.T) {
	s := hrSchema(t)
	c, err := NewChecker(s, WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Shards(); got != 4 {
		t.Fatalf("Shards() = %d, want 4", got)
	}
	if got := c.Mode(); got != Incremental {
		t.Fatalf("sharded Mode() = %v, want Incremental", got)
	}
	// n<=1 selects the plain unsharded engine, not a one-shard router.
	c, _ = NewChecker(s, WithShards(1))
	if got := c.Shards(); got != 1 {
		t.Fatalf("WithShards(1): Shards() = %d, want 1", got)
	}
	c, _ = NewChecker(s)
	if got := c.Shards(); got != 1 {
		t.Fatalf("default Shards() = %d, want 1", got)
	}
	// Sharding composes with mode selection.
	c, err = NewChecker(s, WithMode(Naive), WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	if c.Shards() != 2 || c.Mode() != Naive {
		t.Fatalf("naive sharded: shards=%d mode=%v", c.Shards(), c.Mode())
	}
}

func TestShardedCheckerEquivalence(t *testing.T) {
	build := func(opts ...Option) *Checker {
		c, err := NewChecker(hrSchema(t), opts...)
		if err != nil {
			t.Fatal(err)
		}
		c.MustAddConstraint("no_quick_rehire", "hire(e) -> not once[0,365] fire(e)")
		c.MustAddConstraint("no_refire", "fire(e) -> not once[0,100] fire(e)")
		return c
	}
	plain, sharded := build(), build(WithShards(3))
	r := rand.New(rand.NewSource(83))
	tm := uint64(0)
	for i := 0; i < 100; i++ {
		tm += uint64(1 + r.Intn(20))
		e := int64(r.Intn(6))
		rel := "hire"
		if r.Intn(2) == 0 {
			rel = "fire"
		}
		want, err := plain.Begin().Insert(rel, Int(e)).Commit(tm)
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		got, err := sharded.Begin().Insert(rel, Int(e)).Commit(tm)
		if err != nil {
			t.Fatalf("step %d (sharded): %v", i, err)
		}
		cg, cw := canonViolations(got), canonViolations(want)
		if len(cg) != len(cw) {
			t.Fatalf("step %d: %v vs %v", i, got, want)
		}
		for k := range cg {
			if cg[k] != cw[k] {
				t.Fatalf("step %d: %v vs %v", i, got, want)
			}
		}
	}
	// Tracked bindings live on exactly one shard each, so the summed
	// auxiliary entries match the unsharded engine exactly.
	ps, ss := plain.Stats(), sharded.Stats()
	if ps.Entries != ss.Entries || ps.Timestamps != ss.Timestamps {
		t.Fatalf("aux sums diverge: plain=%+v sharded=%+v", ps, ss)
	}
	// Queries read the merged state across shards.
	pq, err := plain.Query("hire(e) and not fire(e)")
	if err != nil {
		t.Fatal(err)
	}
	sq, err := sharded.Query("hire(e) and not fire(e)")
	if err != nil {
		t.Fatal(err)
	}
	if len(pq.Rows) != len(sq.Rows) {
		t.Fatalf("query rows: plain=%v sharded=%v", pq.Rows, sq.Rows)
	}
	for i := range pq.Rows {
		if pq.Rows[i].Key() != sq.Rows[i].Key() {
			t.Fatalf("query row %d: %v vs %v", i, pq.Rows[i], sq.Rows[i])
		}
	}
}

func TestShardedCheckerUnsupported(t *testing.T) {
	c, err := NewChecker(hrSchema(t), WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	c.MustAddConstraint("no_quick_rehire", "hire(e) -> not once[0,365] fire(e)")
	if _, err := c.Begin().Insert("fire", Int(7)).Commit(10); err != nil {
		t.Fatal(err)
	}
	vs, err := c.Begin().Insert("hire", Int(7)).Commit(20)
	if err != nil || len(vs) != 1 {
		t.Fatalf("vs=%v err=%v", vs, err)
	}
	if _, err := c.Explain(vs[0]); err == nil || !strings.Contains(err.Error(), "sharded") {
		t.Fatalf("Explain on sharded checker: %v", err)
	}
	var buf bytes.Buffer
	if err := c.SaveSnapshot(&buf); err == nil || !strings.Contains(err.Error(), "sharded") {
		t.Fatalf("SaveSnapshot on sharded checker: %v", err)
	}
}
