package rtic

import (
	"bytes"
	"sync"
	"testing"
)

func obsSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema().Relation("hire", 1).Relation("fire", 1).Build()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// driveRehire commits two transactions, the second violating
// no_quick_rehire with e=7.
func driveRehire(t *testing.T, c *Checker) {
	t.Helper()
	if _, err := c.Begin().Insert("fire", Int(7)).Commit(0); err != nil {
		t.Fatal(err)
	}
	vs, err := c.Begin().Delete("fire", Int(7)).Insert("hire", Int(7)).Commit(100)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 1 {
		t.Fatalf("want 1 violation, got %d", len(vs))
	}
}

func TestWithObserverMetricsAllModes(t *testing.T) {
	for _, mode := range []Mode{Incremental, Naive, ActiveRules} {
		t.Run(mode.String(), func(t *testing.T) {
			reg := NewRegistry()
			m := NewMetrics(reg)
			c, err := NewChecker(obsSchema(t), WithMode(mode), WithObserver(&Observer{Metrics: m}))
			if err != nil {
				t.Fatal(err)
			}
			if err := c.AddConstraint("no_quick_rehire", "hire(e) -> not once[0,365] fire(e)"); err != nil {
				t.Fatal(err)
			}
			driveRehire(t, c)

			if got := m.Commits.Value(); got != 2 {
				t.Errorf("commits = %d, want 2", got)
			}
			if got := m.Violations.With("no_quick_rehire").Value(); got != 1 {
				t.Errorf("violations = %d, want 1", got)
			}
			if got := m.CommitSeconds.Count(); got != 2 {
				t.Errorf("latency observations = %d, want 2", got)
			}
			if mode == Incremental {
				st := c.Stats()
				if got := m.AuxNodes.Value(); got != int64(st.Nodes) {
					t.Errorf("aux nodes gauge = %d, Stats says %d", got, st.Nodes)
				}
				if got := m.AuxEntries.Value(); got != int64(st.Entries) {
					t.Errorf("aux entries gauge = %d, Stats says %d", got, st.Entries)
				}
				if got := m.AuxBytes.Value(); got != int64(st.Bytes) {
					t.Errorf("aux bytes gauge = %d, Stats says %d", got, st.Bytes)
				}
			}

			// Failed commits count as errors, not commits.
			if _, err := c.Begin().Insert("hire", Int(1)).Commit(50); err == nil && mode == Incremental {
				t.Error("non-increasing timestamp accepted")
			}
			if mode == Incremental {
				if got := m.CommitErrors.Value(); got != 1 {
					t.Errorf("commit errors = %d, want 1", got)
				}
				if got := m.Commits.Value(); got != 2 {
					t.Errorf("commits after failed commit = %d, want 2", got)
				}
			}
		})
	}
}

type recTracer struct {
	mu  sync.Mutex
	ops map[string]int
}

func (r *recTracer) Trace(ev TraceEvent) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.ops == nil {
		r.ops = make(map[string]int)
	}
	r.ops[ev.Op]++
}

func (r *recTracer) count(op string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ops[op]
}

func TestWithObserverTracer(t *testing.T) {
	tr := &recTracer{}
	c, err := NewChecker(obsSchema(t), WithObserver(&Observer{Tracer: tr}))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddConstraint("no_quick_rehire", "hire(e) -> not once[0,365] fire(e)"); err != nil {
		t.Fatal(err)
	}
	driveRehire(t, c)
	var snap bytes.Buffer
	if err := c.SaveSnapshot(&snap); err != nil {
		t.Fatal(err)
	}
	if got := tr.count("parse"); got != 1 {
		t.Errorf("parse events = %d, want 1", got)
	}
	if got := tr.count("step"); got != 2 {
		t.Errorf("step events = %d, want 2", got)
	}
	if got := tr.count("node.update"); got != 2 { // one temporal node, two commits
		t.Errorf("node.update events = %d, want 2", got)
	}
	if got := tr.count("constraint.check"); got != 2 {
		t.Errorf("constraint.check events = %d, want 2", got)
	}
	if got := tr.count("snapshot.save"); got != 1 {
		t.Errorf("snapshot.save events = %d, want 1", got)
	}

	// Restoring with the observer traces the restore and keeps
	// instrumenting the restored checker.
	c2, err := RestoreChecker(obsSchema(t), &snap, WithObserver(&Observer{Tracer: tr}))
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.count("snapshot.restore"); got != 1 {
		t.Errorf("snapshot.restore events = %d, want 1", got)
	}
	if _, err := c2.Begin().Insert("fire", Int(9)).Commit(200); err != nil {
		t.Fatal(err)
	}
	if got := tr.count("step"); got != 3 {
		t.Errorf("step events after restore = %d, want 3", got)
	}
}

func TestObserverPreRegistersConstraintSeries(t *testing.T) {
	reg := NewRegistry()
	m := NewMetrics(reg)
	c, err := NewChecker(obsSchema(t), WithObserver(&Observer{Metrics: m}))
	if err != nil {
		t.Fatal(err)
	}
	c.MustAddConstraint("a", "hire(e) -> not once[0,10] fire(e)")
	c.MustAddConstraint("b", "fire(e) -> not hire(e)")
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`rtic_violations_total{constraint="a"} 0`,
		`rtic_violations_total{constraint="b"} 0`,
	} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("exposition missing %q before any commit:\n%s", want, buf.String())
		}
	}
}
