package rtic_test

import (
	"fmt"

	"rtic"
)

// The package-level example is the README quick start: a real-time
// separation constraint, violated inside its window and legal outside it.
func Example() {
	s, _ := rtic.NewSchema().Relation("hire", 1).Relation("fire", 1).Build()
	c, _ := rtic.NewChecker(s)
	_ = c.AddConstraint("no_quick_rehire", "hire(e) -> not once[0,365] fire(e)")

	vs, _ := c.Begin().Insert("fire", rtic.Int(7)).Commit(0)
	fmt.Println("day 0:", len(vs), "violations")

	vs, _ = c.Begin().Delete("fire", rtic.Int(7)).Insert("hire", rtic.Int(7)).Commit(100)
	fmt.Println("day 100:", vs[0])

	vs, _ = c.Begin().Commit(366)
	fmt.Println("day 366:", len(vs), "violations")

	// Output:
	// day 0: 0 violations
	// day 100: no_quick_rehire violated at state 1 (time 100) by e=7
	// day 366: 0 violations
}

// Queries inspect the current state with the same first-order language
// constraints use.
func ExampleChecker_Query() {
	s, _ := rtic.NewSchema().Relation("emp", 2).Relation("mgr", 1).Build()
	c, _ := rtic.NewChecker(s)
	_ = c.AddConstraint("mgr_is_emp", "mgr(x) -> exists d: emp(x, d)")

	_, _ = c.Begin().
		Insert("emp", rtic.Int(1), rtic.Str("sales")).
		Insert("emp", rtic.Int(2), rtic.Str("eng")).
		Insert("mgr", rtic.Int(2)).
		Commit(1)

	res, _ := c.Query("emp(x, d) and not mgr(x)")
	fmt.Println(res.Vars)
	for _, row := range res.Rows {
		fmt.Println(row)
	}
	// Output:
	// [d x]
	// ('sales', 1)
}

// Explanations trace a violation back to the auxiliary encoding: which
// temporal conditions held, and which anchor timestamps witnessed them.
func ExampleChecker_Explain() {
	s, _ := rtic.NewSchema().Relation("hire", 1).Relation("fire", 1).Build()
	c, _ := rtic.NewChecker(s)
	_ = c.AddConstraint("no_quick_rehire", "hire(e) -> not once[0,365] fire(e)")

	_, _ = c.Begin().Insert("fire", rtic.Int(7)).Commit(10)
	vs, _ := c.Begin().Delete("fire", rtic.Int(7)).Insert("hire", rtic.Int(7)).Commit(100)

	ex, _ := c.Explain(vs[0])
	fmt.Println(ex.Evidence[0].Formula)
	fmt.Println("witnessed at:", ex.Evidence[0].Times)
	// Output:
	// once[0,365] fire(e)
	// witnessed at: [10]
}

// ParseFormula canonicalizes constraint syntax.
func ExampleParseFormula() {
	canon, _ := rtic.ParseFormula("paid(tk)  ->  once [ 0 , 3 ]  reserved(tk)")
	fmt.Println(canon)
	// Output:
	// paid(tk) -> once[0,3] reserved(tk)
}
